// Package core implements FAST-BCC (Fencing an Arbitrary Spanning Tree),
// the parallel biconnectivity algorithm of Dong, Wang, Gu, and Sun
// (PPoPP 2023) — Alg. 1 of the paper.
//
// The four steps mirror the paper's four phases, and the StepTimes
// breakdown (Fig. 5) maps one-to-one onto them:
//
//  1. First-CC (StepTimes.FirstCC) — parallel connectivity (LDD-UF-JTB)
//     over the input graph, producing a spanning forest as a by-product.
//  2. Rooting (StepTimes.Rooting) — the Euler tour technique roots every
//     tree at its component representative and yields first/last tour
//     positions and parents.
//  3. Tagging (StepTimes.Tagging) — w1/w2 are folded over non-tree edges
//     with atomic min/max writes, then low/high come from 1-D range
//     min/max queries over the tour-ordered w1/w2 arrays.
//  4. Last-CC (StepTimes.LastCC) — connectivity over the *implicit*
//     skeleton (never materialized, keeping auxiliary space O(n)): the
//     non-fence tree edges are streamed off the spanning forest and the
//     cross arcs off the CSR with the fence/back interval tests inlined,
//     all into a concurrent union-find (see lastCC). The step timer also
//     covers the fused finalization — dense labels, component heads,
//     block count, and the per-label size cache are produced in the same
//     pass, so everything the Result's O(n) representation needs is
//     inside the reported Last-CC time. (The lazily-built topology
//     caches, ArticulationPoints and BlockCutTree, are this
//     implementation's serving addition and are outside the paper's
//     phases and the step breakdown.)
//
// The output is the paper's O(n) BCC representation: a label per non-root
// vertex plus a component head per label. Articulation points, bridges,
// and explicit blocks are derived from it on demand.
//
// Multigraphs are supported: parallel edges are all classified as tree
// edges when they parallel a tree edge, which provably never changes any
// fence predicate (the duplicate's w1/w2 contribution equals first[parent],
// and Fence compares with ≤/≥), and self-loops are skipped; neither affects
// vertex-set biconnectivity.
package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conn"
	"repro/internal/etour"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
	"repro/internal/tags"
	"repro/internal/uf"
)

// Options configures FAST-BCC.
type Options struct {
	// Seed drives the randomized connectivity (LDD shifts).
	Seed uint64
	// LocalSearch enables the hash-bag/local-search connectivity
	// optimization (the paper's "Opt" variant, Fig. 6). Default off.
	// Applies to First-CC; Last-CC streams the skeleton into a
	// union-find directly and has no LDD to tune.
	LocalSearch bool
	// Beta is the LDD rate (0 = default). First-CC only, like LocalSearch.
	Beta float64
	// ConnAlg selects the connectivity algorithm for the First-CC phase.
	// (Last-CC no longer runs a general connectivity algorithm: the
	// skeleton arcs are known from the tags and go straight into a
	// union-find.)
	ConnAlg conn.Algorithm
	// Scratch, when non-nil, recycles the ~16n int32 of per-run auxiliary
	// buffers (tags, tour, connectivity state) across BCC calls, the
	// serving pattern where the same process answers many decompositions.
	// The arena is safe for concurrent use, and the returned Result never
	// aliases arena memory, so results stay valid after the arena is
	// reused by later runs.
	Scratch *graph.Scratch
	// Exec is the execution context every parallel loop of the run uses
	// (nil = the process-global default). Concurrent BCC calls with
	// distinct or capped contexts get bounded, isolated parallelism with
	// no global state mutation.
	Exec *parallel.Exec
}

// StepTimes records the per-step running times that Fig. 5 of the paper
// breaks down.
type StepTimes struct {
	FirstCC time.Duration
	Rooting time.Duration
	Tagging time.Duration
	LastCC  time.Duration
}

// Total returns the sum of the step times.
func (s StepTimes) Total() time.Duration {
	return s.FirstCC + s.Rooting + s.Tagging + s.LastCC
}

// Result is the biconnectivity decomposition of a graph in the paper's
// O(n) representation.
type Result struct {
	// Label[v] is the dense skeleton-component id of v in [0, NumLabels).
	// Vertices with the same label are biconnected (Thm. 4.11); a label
	// together with its Head forms one BCC.
	Label []int32
	// Head[l] is the component head attached to label l, or -1 when label
	// l is a tree root's singleton component (not a BCC).
	Head []int32
	// Parent[v] is v's parent in the spanning forest, -1 for roots.
	Parent []int32
	// NumLabels is the number of distinct labels (= len(Head)).
	NumLabels int
	// NumBCC is the number of biconnected components.
	NumBCC int
	// Times holds the per-step breakdown.
	Times StepTimes
	// AuxBytes estimates the peak auxiliary memory in bytes (tags, tour,
	// RMQ tables, connectivity state — everything beyond the input graph).
	AuxBytes int64

	// labelCount[l] is the number of non-root vertices with label l.
	// core.BCC fills it during the fused Last-CC finalization (one pass
	// with the Head assignment); otherwise it is computed lazily, guarded
	// by sizesOnce, on first use (IsBridge, Bridges, TwoECC): the per-call
	// O(n) label scan made those queries quadratic in callers that loop
	// over edges.
	sizesOnce  sync.Once
	labelCount []int32
	// artPoints and bct cache ArticulationPoints and BlockCutTree, which
	// used to be recomputed — O(n) and with maps — on every call. They are
	// computed lazily on first use, guarded by topoOnce, so one-shot BCC
	// callers that never query the topology skip the ~2n int32 of caches
	// entirely. Serving constructors (Runner, Store, engine.FromBlocks,
	// bfsbcc, the Index build) precompute them eagerly on their own
	// execution context via PrecomputeTopologyIn, so published snapshots
	// have no first-query latency cliff.
	topoOnce  sync.Once
	artPoints []int32
	bct       *BlockCutTree
}

// computeLabelSizes is the one O(n) pass behind LabelSizes.
func computeLabelSizes(r *Result) []int32 {
	count := make([]int32, r.NumLabels)
	for v, l := range r.Label {
		if r.Parent[v] != -1 {
			count[l]++
		}
	}
	return count
}

// PrecomputeLabelSizes populates the LabelSizes cache ahead of
// publication; constructors that do not fill the cache during their own
// finalization (bfsbcc.BCC, engine.FromBlocks) call it once. Equivalent
// to discarding LabelSizes().
func (r *Result) PrecomputeLabelSizes() { r.LabelSizes() }

// LabelSizes returns the per-label count of non-root member vertices
// (label l's block has LabelSizes()[l]+1 vertices including its head).
// The cache is computed on first use, guarded by a sync.Once: concurrent
// first calls on a shared Result are safe and every caller gets the same
// cached slice (treat it as read-only). core.BCC fills the cache during
// finalization, so on a BCC result this is always a lock-free read.
func (r *Result) LabelSizes() []int32 {
	r.sizesOnce.Do(func() {
		if r.labelCount == nil {
			r.labelCount = computeLabelSizes(r)
		}
	})
	return r.labelCount
}

// BCC computes the biconnected components of g with FAST-BCC.
func BCC(g *graph.Graph, opt Options) *Result {
	n := int(g.N)
	sc := opt.Scratch
	if sc == nil {
		// Run-private arena: the pipeline's Get/Put discipline then
		// recycles buffers within this one run (the LDD frontier buffers
		// alone round-trip every BFS round), and the whole arena dies
		// with the run. The Result never aliases arena memory, so this is
		// invisible to the caller; passing a long-lived Options.Scratch
		// still amortizes across runs.
		sc = graph.NewScratch()
	}
	e := opt.Exec
	res := &Result{}

	// ---- Step 1: First-CC ------------------------------------------------
	t0 := time.Now()
	cc := conn.Connectivity(g, conn.Options{
		Algorithm:   opt.ConnAlg,
		Beta:        opt.Beta,
		Seed:        opt.Seed,
		LocalSearch: opt.LocalSearch,
		WantForest:  true,
		Scratch:     sc,
		Exec:        e,
	})
	res.Times.FirstCC = time.Since(t0)

	// ---- Step 2: Rooting -------------------------------------------------
	t0 = time.Now()
	rt := etour.RootIn(e, n, cc.Forest, cc.Comp, sc)
	res.Parent = rt.Parent
	sc.PutInt32(cc.Comp)
	sc.PutEdges(cc.Forest)
	res.Times.Rooting = time.Since(t0)

	// ---- Step 3: Tagging -------------------------------------------------
	t0 = time.Now()
	tg := tags.ComputeIn(e, g, rt, sc)
	sc.PutInt32(rt.Tour)
	res.Times.Tagging = time.Since(t0)

	// ---- Step 4: Last-CC -------------------------------------------------
	t0 = time.Now()
	lastCC(e, g, tg, rt.NumTrees, sc, res)
	// The tag arrays die with the skeleton pass; First/Last alias the
	// Rooted arrays, so each buffer goes back exactly once.
	sc.PutInt32(tg.Low, tg.High, rt.First, rt.Last)
	res.Times.LastCC = time.Since(t0)
	// The articulation-point / block-cut-tree caches stay lazy (sync.Once
	// on first query); serving constructors precompute them on their own
	// context — see PrecomputeTopology.

	// Auxiliary space estimate (bytes): per-vertex tag arrays (w1, w2,
	// low, high, first, last, parent, comp, labels, head ≈ 10n int32),
	// tour + RMQ value arrays (≈ 3·2n), RMQ block tables (≈ 4·2n/16),
	// connectivity + skeleton union-find state (≈ 3n), spanning forest
	// (2n).
	res.AuxBytes = int64(n) * 4 * (10 + 6 + 1 + 3 + 2)
	return res
}

// lastCC is the skeleton-aware Last-CC step fused with finalization.
//
// The skeleton G' (Alg. 1 line 7) is never materialized, but unlike the
// historical implementation it is not rediscovered by a full filtered
// connectivity run either: LDD shift sampling, BFS rounds, and two
// per-arc InSkeleton closure calls over all m edges are replaced by
// streaming the two skeleton arc classes straight into a concurrent
// union-find —
//
//   - non-fence tree edges read off the First-CC spanning forest (the
//     parent array), one O(1) fence test per vertex, no adjacency scan;
//   - cross arcs found by one pass over the CSR with the back-edge
//     interval tests inlined (tree and back arcs are skipped in place).
//
// The skeleton is a subgraph of already-known structure, so the LDD's
// theoretical span guarantee buys nothing here: the union-find depth is
// bounded by the same argument as the cut-edge phase of First-CC.
//
// Finalization is fused into the same step: dense labels come from a
// prefix sum over union-find roots, and a single parallel pass assigns
// component heads (Thm. 4.9: the head is the unique parent across a
// fence edge out of the component) while counting per-label members —
// the LabelSizes cache — in place. The sequential head scan that used to
// count blocks is gone entirely: every tree root is isolated in the
// skeleton (all root tree edges are fences, all root non-tree arcs are
// back arcs), so NumBCC = NumLabels − numTrees in O(1).
func lastCC(e *parallel.Exec, g *graph.Graph, tg *tags.Tags, numTrees int, sc *graph.Scratch, res *Result) {
	n := int(g.N)
	parent, first, last, low, high := tg.Parent, tg.First, tg.Last, tg.Low, tg.High
	ufbuf := sc.GetInt32(n)
	e.Iota(ufbuf, 0)
	u := uf.Wrap(ufbuf)
	// Skeleton tree arcs: the tree edge (p(v), v) is in G' iff it is not
	// a fence edge (Alg. 1 line 11, evaluated parent-side).
	e.For(n, func(v int) {
		if p := parent[v]; p != -1 && !(first[p] <= low[v] && last[p] >= high[v]) {
			u.Union(int32(v), p)
		}
	})
	// Skeleton cross arcs: non-tree, non-back (Alg. 1 line 13). The
	// degree-aware blocked arc walk keeps hubs from serializing; all
	// predicates are inlined interval tests on the segment's fixed v.
	g.ForArcSegments(e, 4096, func(v int32, adj []int32) {
		fv, lv := first[v], last[v]
		for _, w := range adj {
			if v >= w { // each undirected edge once; skips self-loops
				continue
			}
			if parent[w] == v || parent[v] == w {
				continue // (parallels a) tree edge: handled above
			}
			fw := first[w]
			if fv <= fw && lv >= fw {
				continue // back edge: v is an ancestor of w
			}
			if fw <= fv && last[w] >= fv {
				continue // back edge: w is an ancestor of v
			}
			u.Union(v, w)
		}
	})
	// Dense labels: rank the union-find roots by a prefix sum, exactly
	// conn's Normalize but over arena buffers.
	comp := sc.GetInt32(n)
	isRoot := sc.GetInt32(n)
	e.For(n, func(v int) {
		c := u.Find(int32(v))
		comp[v] = c
		if c == int32(v) {
			isRoot[v] = 1
		} else {
			isRoot[v] = 0
		}
	})
	numLabels := int(prim.ExclusiveScanInt32In(e, isRoot))
	// Fused finalization: one parallel pass writes the dense label,
	// assigns the component head across fence edges, and counts label
	// members (the LabelSizes cache). Tree roots are isolated in the
	// skeleton, so a root is the sole writer of its label's head slot
	// (-1: a root singleton is not a BCC); every other label's head
	// writers agree on the unique head (Thm. 4.9) and store it
	// atomically to keep the concurrent same-value writes well-defined
	// under the Go memory model.
	label := make([]int32, n) // retained by the Result: never arena-backed
	head := make([]int32, numLabels)
	count := make([]int32, numLabels)
	e.ForBlock(n, parallel.DefaultGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			l := isRoot[comp[v]]
			label[v] = l
			p := parent[v]
			if p == -1 {
				head[l] = -1
				continue
			}
			atomic.AddInt32(&count[l], 1)
			if comp[p] != comp[v] {
				atomic.StoreInt32(&head[l], p)
			}
		}
	})
	sc.PutInt32(ufbuf, comp, isRoot)
	res.Label = label
	res.Head = head
	res.NumLabels = numLabels
	res.NumBCC = numLabels - numTrees
	res.labelCount = count
}

// Blocks materializes the explicit biconnected components as sorted vertex
// sets (the label's vertices plus its head). Intended for verification and
// modest-size outputs; the O(n) Label/Head representation is the scalable
// interface.
func (r *Result) Blocks() [][]int32 {
	buckets := make([][]int32, r.NumLabels)
	for v, l := range r.Label {
		if r.Parent[v] != -1 { // non-root vertices define block membership
			buckets[l] = append(buckets[l], int32(v))
		}
	}
	var blocks [][]int32
	for l, members := range buckets {
		if r.Head[l] == -1 {
			continue
		}
		blk := append([]int32{r.Head[l]}, members...)
		sortInt32(blk) // canonical form
		blocks = append(blocks, blk)
	}
	return blocks
}

// ArticulationPoints returns the articulation points in increasing vertex
// order: vertices belonging to at least two blocks (Thm. 4.4: exactly the
// BCC heads, counting the parent-side block for non-roots). The answer is
// computed on first use together with the block-cut tree, guarded by a
// sync.Once — concurrent first calls on a shared Result are safe and all
// return the same cached slice (treat it as read-only). Serving
// constructors precompute it (see PrecomputeTopology), making this a
// lock-free read on their snapshots.
func (r *Result) ArticulationPoints() []int32 {
	r.precomputeTopology(nil)
	return r.artPoints
}

// computeArticulationPoints is the parallel pass behind ArticulationPoints.
// The result is never nil (an empty answer is a non-nil empty slice, so the
// cache can distinguish "computed, none" from "not computed").
func computeArticulationPoints(e *parallel.Exec, r *Result) []int32 {
	n := len(r.Label)
	blocksOf := make([]int32, n)
	e.ForBlock(r.NumLabels, parallel.DefaultGrain, func(lo, hi int) {
		for l := lo; l < hi; l++ {
			if h := r.Head[l]; h != -1 {
				atomic.AddInt32(&blocksOf[h], 1)
			}
		}
	})
	out := prim.PackIndicesIn(e, n, func(v int) bool {
		c := blocksOf[v]
		if r.Parent[v] != -1 {
			c++
		}
		return c >= 2
	})
	if out == nil {
		out = []int32{}
	}
	return out
}

// PrecomputeTopology populates the ArticulationPoints and BlockCutTree
// caches. core.BCC leaves them lazy (a one-shot decomposition that never
// queries the topology should not pay ~2n int32 for it); serving
// constructors — Runner, Store, engine adapters, bfsbcc, the Index build
// — call this before publishing a snapshot so queries never hit the
// compute path. Idempotent and safe to call concurrently with the lazy
// accessors (all paths funnel through one sync.Once).
func (r *Result) PrecomputeTopology() { r.precomputeTopology(nil) }

// PrecomputeTopologyIn is PrecomputeTopology running on the execution
// context e (nil = the process-global default), so constructors outside
// this package (bfsbcc, the engine adapters, bctree.NewIn) keep the whole
// build on one per-run context. Note the context only applies when this
// call is the one that populates the cache.
func (r *Result) PrecomputeTopologyIn(e *parallel.Exec) { r.precomputeTopology(e) }

func (r *Result) precomputeTopology(e *parallel.Exec) {
	r.topoOnce.Do(func() {
		if r.artPoints == nil {
			r.artPoints = computeArticulationPoints(e, r)
		}
		if r.bct == nil {
			r.bct = buildBlockCutTree(e, r, r.artPoints)
		}
	})
}

// IsBridge reports whether the edge {u,w} of g is a bridge: its block has
// exactly two vertices and the edge is not duplicated in the multigraph.
func (r *Result) IsBridge(g *graph.Graph, u, w int32) bool {
	if u == w {
		return false
	}
	// Orient so that w is the child.
	if r.Parent[w] != u {
		u, w = w, u
		if r.Parent[w] != u {
			return false // non-tree edges are never bridges
		}
	}
	// Bridge iff w's skeleton component is the singleton {w}, its head is
	// u, and the block is exactly {u,w} — i.e. no other vertex shares w's
	// label — and the edge has multiplicity 1.
	if r.LabelSizes()[r.Label[w]] != 1 {
		return false
	}
	mult := 0
	for _, x := range g.Neighbors(u) {
		if x == w {
			mult++
		}
	}
	return mult == 1
}

// Bridges returns all bridge edges of g.
func (r *Result) Bridges(g *graph.Graph) []graph.Edge {
	n := len(r.Label)
	count := r.LabelSizes()
	var out []graph.Edge
	for v := 0; v < n; v++ {
		p := r.Parent[v]
		if p == -1 || count[r.Label[v]] != 1 {
			continue
		}
		mult := 0
		for _, x := range g.Neighbors(int32(v)) {
			if x == p {
				mult++
			}
		}
		if mult == 1 {
			e := graph.Edge{U: p, W: int32(v)}
			if e.U > e.W {
				e.U, e.W = e.W, e.U
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].W < out[b].W
	})
	return out
}

func sortInt32(a []int32) {
	// Blocks can be as large as the graph (the giant biconnected core of a
	// social network); use the parallel sample sort.
	prim.SortInt32(a)
}

// Biconnected reports whether u and w lie in a common block, in O(1):
// either they share a label, or one is the component head of the other's
// label. Roots and isolated vertices are biconnected with nothing.
func (r *Result) Biconnected(u, w int32) bool {
	if u == w {
		return false
	}
	lu, lw := r.Label[u], r.Label[w]
	if r.Parent[u] != -1 && r.Parent[w] != -1 && lu == lw {
		return true
	}
	if r.Parent[w] != -1 && r.Head[lw] == u {
		return true
	}
	if r.Parent[u] != -1 && r.Head[lu] == w {
		return true
	}
	return false
}
