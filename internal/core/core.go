// Package core implements FAST-BCC (Fencing an Arbitrary Spanning Tree),
// the parallel biconnectivity algorithm of Dong, Wang, Gu, and Sun
// (PPoPP 2023) — Alg. 1 of the paper.
//
// The four steps mirror the paper exactly:
//
//  1. First-CC — parallel connectivity (LDD-UF-JTB) over the input graph,
//     producing a spanning forest as a by-product.
//  2. Rooting — the Euler tour technique roots every tree at its component
//     representative and yields first/last tour positions and parents.
//  3. Tagging — w1/w2 are folded over non-tree edges with atomic min/max
//     writes, then low/high come from 1-D range min/max queries over the
//     tour-ordered w1/w2 arrays.
//  4. Last-CC — connectivity over the *implicit* skeleton: the input graph
//     with fence tree edges and back edges skipped by the InSkeleton
//     predicate (never materialized, keeping auxiliary space O(n));
//     component heads are then read off the fence edges whose endpoints
//     got different labels.
//
// The output is the paper's O(n) BCC representation: a label per non-root
// vertex plus a component head per label. Articulation points, bridges,
// and explicit blocks are derived from it on demand.
//
// Multigraphs are supported: parallel edges are all classified as tree
// edges when they parallel a tree edge, which provably never changes any
// fence predicate (the duplicate's w1/w2 contribution equals first[parent],
// and Fence compares with ≤/≥), and self-loops are skipped; neither affects
// vertex-set biconnectivity.
package core

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/conn"
	"repro/internal/etour"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
	"repro/internal/tags"
)

// Options configures FAST-BCC.
type Options struct {
	// Seed drives the randomized connectivity (LDD shifts).
	Seed uint64
	// LocalSearch enables the hash-bag/local-search connectivity
	// optimization (the paper's "Opt" variant, Fig. 6). Default off.
	LocalSearch bool
	// Beta is the LDD rate (0 = default).
	Beta float64
	// ConnAlg selects the connectivity algorithm for both CC phases.
	ConnAlg conn.Algorithm
	// Scratch, when non-nil, recycles the ~16n int32 of per-run auxiliary
	// buffers (tags, tour, connectivity state) across BCC calls, the
	// serving pattern where the same process answers many decompositions.
	// The arena is safe for concurrent use, and the returned Result never
	// aliases arena memory, so results stay valid after the arena is
	// reused by later runs.
	Scratch *graph.Scratch
	// Exec is the execution context every parallel loop of the run uses
	// (nil = the process-global default). Concurrent BCC calls with
	// distinct or capped contexts get bounded, isolated parallelism with
	// no global state mutation.
	Exec *parallel.Exec
}

// StepTimes records the per-step running times that Fig. 5 of the paper
// breaks down.
type StepTimes struct {
	FirstCC time.Duration
	Rooting time.Duration
	Tagging time.Duration
	LastCC  time.Duration
}

// Total returns the sum of the step times.
func (s StepTimes) Total() time.Duration {
	return s.FirstCC + s.Rooting + s.Tagging + s.LastCC
}

// Result is the biconnectivity decomposition of a graph in the paper's
// O(n) representation.
type Result struct {
	// Label[v] is the dense skeleton-component id of v in [0, NumLabels).
	// Vertices with the same label are biconnected (Thm. 4.11); a label
	// together with its Head forms one BCC.
	Label []int32
	// Head[l] is the component head attached to label l, or -1 when label
	// l is a tree root's singleton component (not a BCC).
	Head []int32
	// Parent[v] is v's parent in the spanning forest, -1 for roots.
	Parent []int32
	// NumLabels is the number of distinct labels (= len(Head)).
	NumLabels int
	// NumBCC is the number of biconnected components.
	NumBCC int
	// Times holds the per-step breakdown.
	Times StepTimes
	// AuxBytes estimates the peak auxiliary memory in bytes (tags, tour,
	// RMQ tables, connectivity state — everything beyond the input graph).
	AuxBytes int64

	// labelCount[l] is the number of non-root vertices with label l,
	// computed lazily on first use (IsBridge, Bridges) and cached: the
	// per-call O(n) label scan made those queries quadratic in callers
	// that loop over edges.
	labelCount []int32
	// artPoints and bct cache ArticulationPoints and BlockCutTree, which
	// used to be recomputed — O(n) and with maps — on every call.
	// Populated once by the constructors (PrecomputeTopology) before the
	// Result is published, same discipline as labelCount.
	artPoints []int32
	bct       *BlockCutTree
}

// computeLabelSizes is the one O(n) pass behind LabelSizes.
func computeLabelSizes(r *Result) []int32 {
	count := make([]int32, r.NumLabels)
	for v, l := range r.Label {
		if r.Parent[v] != -1 {
			count[l]++
		}
	}
	return count
}

// PrecomputeLabelSizes populates the LabelSizes cache. Constructors
// (core.BCC, bfsbcc.BCC) call it exactly once before publishing the
// Result; it must not be called concurrently with other accessors. The
// cache is a plain field rather than a sync primitive so the exported
// Result stays a plain copyable value.
func (r *Result) PrecomputeLabelSizes() {
	if r.labelCount == nil {
		r.labelCount = computeLabelSizes(r)
	}
}

// LabelSizes returns the per-label count of non-root member vertices
// (label l's block has LabelSizes()[l]+1 vertices including its head).
// For constructor-built Results the cache was populated before
// publication, so this is a lock-free read, safe for concurrent use. A
// caller-assembled Result without the cache gets a fresh computation per
// call — never a cache write, so concurrent use stays race-free there
// too, just without the caching.
func (r *Result) LabelSizes() []int32 {
	if c := r.labelCount; c != nil {
		return c
	}
	return computeLabelSizes(r)
}

// BCC computes the biconnected components of g with FAST-BCC.
func BCC(g *graph.Graph, opt Options) *Result {
	n := int(g.N)
	sc := opt.Scratch
	e := opt.Exec
	res := &Result{}

	// ---- Step 1: First-CC ------------------------------------------------
	t0 := time.Now()
	cc := conn.Connectivity(g, conn.Options{
		Algorithm:   opt.ConnAlg,
		Beta:        opt.Beta,
		Seed:        opt.Seed,
		LocalSearch: opt.LocalSearch,
		WantForest:  true,
		Scratch:     sc,
		Exec:        e,
	})
	res.Times.FirstCC = time.Since(t0)

	// ---- Step 2: Rooting -------------------------------------------------
	t0 = time.Now()
	rt := etour.RootIn(e, n, cc.Forest, cc.Comp, sc)
	res.Parent = rt.Parent
	sc.PutInt32(cc.Comp)
	sc.PutEdges(cc.Forest)
	res.Times.Rooting = time.Since(t0)

	// ---- Step 3: Tagging -------------------------------------------------
	t0 = time.Now()
	tg := tags.ComputeIn(e, g, rt, sc)
	parent := tg.Parent
	sc.PutInt32(rt.Tour)
	res.Times.Tagging = time.Since(t0)

	// ---- Step 4: Last-CC -------------------------------------------------
	t0 = time.Now()
	sk := conn.Connectivity(g, conn.Options{
		Algorithm:   opt.ConnAlg,
		Beta:        opt.Beta,
		Seed:        opt.Seed + 0x5eed,
		LocalSearch: opt.LocalSearch,
		Filter:      tg.InSkeleton,
		Scratch:     sc,
		Exec:        e,
	})
	res.Label = sk.NormalizeIn(e)
	res.NumLabels = sk.NumComp
	sc.PutInt32(sk.Comp)
	res.Head = make([]int32, sk.NumComp)
	parallel.FillIn(e, res.Head, -1)
	e.For(n, func(v int) {
		p := parent[v]
		if p != -1 && res.Label[v] != res.Label[p] {
			// Fence edge leaving v's skeleton component upward: p is the
			// component head. All writers of one label agree on the value
			// (Thm. 4.9: the head is unique); the store is atomic to keep
			// the concurrent same-value writes well-defined under the Go
			// memory model.
			atomic.StoreInt32(&res.Head[res.Label[v]], p)
		}
	})
	nBCC := 0
	for _, h := range res.Head {
		if h != -1 {
			nBCC++
		}
	}
	res.NumBCC = nBCC
	// The tag arrays die with the Last-CC filter; First/Last alias the
	// Rooted arrays, so each buffer goes back exactly once.
	sc.PutInt32(tg.Low, tg.High, rt.First, rt.Last)
	// Populate the per-label size cache before the Result is published so
	// IsBridge/Bridges are O(1)-per-query reads on a BCC result, and the
	// articulation-point / block-cut-tree caches so every Result carries
	// its query substrate (computed once, on this run's execution context).
	res.PrecomputeLabelSizes()
	res.Times.LastCC = time.Since(t0)
	// Outside the step breakdown: the paper's four steps end at Last-CC;
	// the caches are this implementation's serving addition.
	res.precomputeTopology(e)

	// Auxiliary space estimate (bytes): per-vertex tag arrays (w1, w2,
	// low, high, first, last, parent, comp, labels, head ≈ 10n int32),
	// tour + RMQ value arrays (≈ 3·2n), RMQ block tables (≈ 4·2n/16),
	// connectivity state (≈ 3n), spanning forest (2n).
	res.AuxBytes = int64(n) * 4 * (10 + 6 + 1 + 3 + 2)
	return res
}

// Blocks materializes the explicit biconnected components as sorted vertex
// sets (the label's vertices plus its head). Intended for verification and
// modest-size outputs; the O(n) Label/Head representation is the scalable
// interface.
func (r *Result) Blocks() [][]int32 {
	buckets := make([][]int32, r.NumLabels)
	for v, l := range r.Label {
		if r.Parent[v] != -1 { // non-root vertices define block membership
			buckets[l] = append(buckets[l], int32(v))
		}
	}
	var blocks [][]int32
	for l, members := range buckets {
		if r.Head[l] == -1 {
			continue
		}
		blk := append([]int32{r.Head[l]}, members...)
		sortInt32(blk) // canonical form
		blocks = append(blocks, blk)
	}
	return blocks
}

// ArticulationPoints returns the articulation points in increasing vertex
// order: vertices belonging to at least two blocks (Thm. 4.4: exactly the
// BCC heads, counting the parent-side block for non-roots). For
// constructor-built Results the answer is cached (see PrecomputeTopology)
// and shared between callers — treat it as read-only.
func (r *Result) ArticulationPoints() []int32 {
	if ap := r.artPoints; ap != nil {
		return ap
	}
	return computeArticulationPoints(nil, r)
}

// computeArticulationPoints is the parallel pass behind ArticulationPoints.
// The result is never nil (an empty answer is a non-nil empty slice, so the
// cache can distinguish "computed, none" from "not computed").
func computeArticulationPoints(e *parallel.Exec, r *Result) []int32 {
	n := len(r.Label)
	blocksOf := make([]int32, n)
	e.ForBlock(r.NumLabels, parallel.DefaultGrain, func(lo, hi int) {
		for l := lo; l < hi; l++ {
			if h := r.Head[l]; h != -1 {
				atomic.AddInt32(&blocksOf[h], 1)
			}
		}
	})
	out := prim.PackIndicesIn(e, n, func(v int) bool {
		c := blocksOf[v]
		if r.Parent[v] != -1 {
			c++
		}
		return c >= 2
	})
	if out == nil {
		out = []int32{}
	}
	return out
}

// PrecomputeTopology populates the ArticulationPoints and BlockCutTree
// caches. Constructors call it exactly once before publishing the Result;
// like PrecomputeLabelSizes it must not be called concurrently with other
// accessors, and a caller-assembled Result without the caches simply gets
// a fresh computation per call.
func (r *Result) PrecomputeTopology() { r.precomputeTopology(nil) }

// PrecomputeTopologyIn is PrecomputeTopology running on the execution
// context e (nil = the process-global default), so constructors outside
// this package (bfsbcc, the engine adapters) keep the whole build on one
// per-run context.
func (r *Result) PrecomputeTopologyIn(e *parallel.Exec) { r.precomputeTopology(e) }

func (r *Result) precomputeTopology(e *parallel.Exec) {
	if r.artPoints == nil {
		r.artPoints = computeArticulationPoints(e, r)
	}
	if r.bct == nil {
		r.bct = buildBlockCutTree(e, r, r.artPoints)
	}
}

// IsBridge reports whether the edge {u,w} of g is a bridge: its block has
// exactly two vertices and the edge is not duplicated in the multigraph.
func (r *Result) IsBridge(g *graph.Graph, u, w int32) bool {
	if u == w {
		return false
	}
	// Orient so that w is the child.
	if r.Parent[w] != u {
		u, w = w, u
		if r.Parent[w] != u {
			return false // non-tree edges are never bridges
		}
	}
	// Bridge iff w's skeleton component is the singleton {w}, its head is
	// u, and the block is exactly {u,w} — i.e. no other vertex shares w's
	// label — and the edge has multiplicity 1.
	if r.LabelSizes()[r.Label[w]] != 1 {
		return false
	}
	mult := 0
	for _, x := range g.Neighbors(u) {
		if x == w {
			mult++
		}
	}
	return mult == 1
}

// Bridges returns all bridge edges of g.
func (r *Result) Bridges(g *graph.Graph) []graph.Edge {
	n := len(r.Label)
	count := r.LabelSizes()
	var out []graph.Edge
	for v := 0; v < n; v++ {
		p := r.Parent[v]
		if p == -1 || count[r.Label[v]] != 1 {
			continue
		}
		mult := 0
		for _, x := range g.Neighbors(int32(v)) {
			if x == p {
				mult++
			}
		}
		if mult == 1 {
			e := graph.Edge{U: p, W: int32(v)}
			if e.U > e.W {
				e.U, e.W = e.W, e.U
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].W < out[b].W
	})
	return out
}

func sortInt32(a []int32) {
	// Blocks can be as large as the graph (the giant biconnected core of a
	// social network); use the parallel sample sort.
	prim.SortInt32(a)
}

// Biconnected reports whether u and w lie in a common block, in O(1):
// either they share a label, or one is the component head of the other's
// label. Roots and isolated vertices are biconnected with nothing.
func (r *Result) Biconnected(u, w int32) bool {
	if u == w {
		return false
	}
	lu, lw := r.Label[u], r.Label[w]
	if r.Parent[u] != -1 && r.Parent[w] != -1 && lu == lw {
		return true
	}
	if r.Parent[w] != -1 && r.Head[lw] == u {
		return true
	}
	if r.Parent[u] != -1 && r.Head[lu] == w {
		return true
	}
	return false
}
