package core

// RestoreResult reassembles a Result from previously serialized arrays —
// the restart path of the store's snapshot persistence. The lazy caches
// (labelCount, artPoints, bct) are installed before their sync.Onces are
// burned, so the Do bodies see non-nil fields and keep the restored
// slices: a restored Result answers every topology query without
// recomputing anything, exactly like the Result it was saved from.
//
// The caller owns shape validation (it knows the graph the arrays must
// match); RestoreResult only wires fields together.
func RestoreResult(label, head, parent, labelCount, artPoints []int32, numBCC int, bct *BlockCutTree) *Result {
	r := &Result{
		Label:     label,
		Head:      head,
		Parent:    parent,
		NumLabels: len(head),
		NumBCC:    numBCC,
	}
	r.labelCount = labelCount
	r.artPoints = artPoints
	r.bct = bct
	// Burn the Onces: their bodies nil-check before computing, so with the
	// fields already set these are no-ops that mark the caches ready.
	r.LabelSizes()
	r.precomputeTopology(nil)
	return r
}
