package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/conn"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
)

// assertMatchesSeq checks that FAST-BCC's decomposition equals the
// Hopcroft–Tarjan decomposition on g, for the given options.
func assertMatchesSeq(t *testing.T, g *graph.Graph, opt Options) *Result {
	t.Helper()
	res := BCC(g, opt)
	ref := seqbcc.BCC(g)
	if res.NumBCC != ref.NumBCC() {
		t.Fatalf("NumBCC = %d, want %d", res.NumBCC, ref.NumBCC())
	}
	if !check.Equal(res.Blocks(), ref.Blocks) {
		t.Fatalf("blocks differ:\n fast: %s\n  seq: %s",
			check.Describe(res.Blocks()), check.Describe(ref.Blocks))
	}
	return res
}

func TestStructuredGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"triangle", gen.Clique(3)},
		{"clique8", gen.Clique(8)},
		{"chain40", gen.Chain(40)},
		{"cycle64", gen.Cycle(64)},
		{"star12", gen.Star(12)},
		{"barbell", gen.Barbell(5, 3)},
		{"cliquechain", gen.CliqueChain(5, 4)},
		{"grid", gen.Grid2D(6, 7, false)},
		{"torus", gen.Grid2D(6, 7, true)},
		{"tree", gen.RandomTree(60, 1)},
		{"er", gen.ER(80, 150, 2)},
		{"sampled", gen.SampledGrid(10, 10, 0.55, 3)},
		{"disjoint", gen.Disjoint(gen.Cycle(9), gen.Chain(7), gen.Clique(5), gen.Star(6))},
		{"singleedge", graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}})},
		{"edgeless", graph.MustFromEdges(5, nil)},
		{"empty", graph.MustFromEdges(0, nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertMatchesSeq(t, tc.g, Options{Seed: 42})
		})
	}
}

func TestMultipleSeeds(t *testing.T) {
	// The spanning tree differs per seed; the decomposition must not.
	g := gen.ER(200, 500, 7)
	for seed := uint64(0); seed < 8; seed++ {
		assertMatchesSeq(t, g, Options{Seed: seed})
	}
}

func TestLocalSearchVariant(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Chain(5000),
		gen.Grid2D(30, 30, true),
		gen.RMAT(10, 6, 3),
	} {
		assertMatchesSeq(t, g, Options{Seed: 1, LocalSearch: true})
	}
}

func TestUFAsyncConnectivityVariant(t *testing.T) {
	g := gen.ER(300, 700, 9)
	assertMatchesSeq(t, g, Options{Seed: 2, ConnAlg: conn.UFAsync})
}

func TestSelfLoopsAndParallelEdges(t *testing.T) {
	cases := [][]graph.Edge{
		{{U: 0, W: 0}},
		{{U: 0, W: 1}, {U: 0, W: 1}},
		{{U: 0, W: 1}, {U: 1, W: 2}, {U: 0, W: 1}, {U: 2, W: 2}},
		{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}, {U: 0, W: 1}},
	}
	for i, edges := range cases {
		n := 3
		g := graph.MustFromEdges(n, edges)
		res := BCC(g, Options{Seed: 5})
		ref := seqbcc.BCC(g)
		if !check.Equal(res.Blocks(), ref.Blocks) {
			t.Fatalf("case %d: %s != %s", i,
				check.Describe(res.Blocks()), check.Describe(ref.Blocks))
		}
	}
}

func TestQuickRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := BCC(g, Options{Seed: uint64(seed)})
		return check.Equal(res.Blocks(), seqbcc.BCC(g).Blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomGraphsLocalSearch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		m := rng.Intn(4 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := BCC(g, Options{Seed: uint64(seed), LocalSearch: true})
		return check.Equal(res.Blocks(), seqbcc.BCC(g).Blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestArticulationPoints(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want []int32
	}{
		{gen.Chain(5), []int32{1, 2, 3}},
		{gen.Cycle(6), nil},
		{gen.Star(5), []int32{0}},
		{gen.Barbell(3, 1), []int32{2, 3}},
	}
	for i, tc := range cases {
		res := BCC(tc.g, Options{Seed: 3})
		got := res.ArticulationPoints()
		if len(got) != len(tc.want) {
			t.Fatalf("case %d: articulation %v, want %v", i, got, tc.want)
		}
		for j := range got {
			if got[j] != tc.want[j] {
				t.Fatalf("case %d: articulation %v, want %v", i, got, tc.want)
			}
		}
	}
}

func TestArticulationMatchesSeqOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(100)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		got := BCC(g, Options{Seed: uint64(trial)}).ArticulationPoints()
		want := seqbcc.BCC(g).ArticulationPoints()
		if len(got) != len(want) {
			t.Fatalf("trial %d: articulation %v want %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: articulation %v want %v", trial, got, want)
			}
		}
	}
}

func TestBridges(t *testing.T) {
	g := gen.Barbell(4, 2)
	res := BCC(g, Options{Seed: 4})
	got := res.Bridges(g)
	want := seqbcc.BCC(g).Bridges()
	if len(got) != len(want) {
		t.Fatalf("bridges %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bridges %v, want %v", got, want)
		}
	}
}

func TestBridgesMatchSeqOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(80)
		m := rng.Intn(2 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		got := BCC(g, Options{Seed: uint64(trial)}).Bridges(g)
		want := seqbcc.BCC(g).Bridges()
		if len(got) != len(want) {
			t.Fatalf("trial %d: bridges %v want %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: bridges differ at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestIsBridge(t *testing.T) {
	g := gen.Barbell(3, 1) // K3 - bridge - K3: bridge between 2 and 3
	res := BCC(g, Options{Seed: 6})
	if !res.IsBridge(g, 2, 3) || !res.IsBridge(g, 3, 2) {
		t.Fatal("bridge not detected")
	}
	if res.IsBridge(g, 0, 1) {
		t.Fatal("clique edge flagged as bridge")
	}
	if res.IsBridge(g, 0, 0) {
		t.Fatal("self pair flagged as bridge")
	}
	if res.IsBridge(g, 0, 5) {
		t.Fatal("non-edge flagged as bridge")
	}
}

func TestLabelsAreDense(t *testing.T) {
	g := gen.CliqueChain(4, 4)
	res := BCC(g, Options{Seed: 7})
	seen := make([]bool, res.NumLabels)
	for _, l := range res.Label {
		if l < 0 || int(l) >= res.NumLabels {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	for l, s := range seen {
		if !s {
			t.Fatalf("label %d unused", l)
		}
	}
}

func TestHeadsConsistent(t *testing.T) {
	// Every head must be a real vertex outside the labeled set, and the
	// number of BCCs equals labels with heads.
	g := gen.ER(150, 300, 17)
	res := BCC(g, Options{Seed: 8})
	withHead := 0
	for l, h := range res.Head {
		if h == -1 {
			continue
		}
		withHead++
		if h < 0 || int(h) >= len(res.Label) {
			t.Fatalf("head %d out of range", h)
		}
		if res.Label[h] == int32(l) {
			t.Fatalf("head %d has its own label %d", h, l)
		}
	}
	if withHead != res.NumBCC {
		t.Fatalf("labels with heads %d != NumBCC %d", withHead, res.NumBCC)
	}
}

func TestBiconnectedPairsShareLabel(t *testing.T) {
	// Direct statement of Thm. 4.7/4.10 on a known structure: inside one
	// clique of a clique chain all non-head vertices share a label.
	g := gen.CliqueChain(3, 5)
	res := BCC(g, Options{Seed: 9})
	blocks := res.Blocks()
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	for _, b := range blocks {
		if len(b) != 5 {
			t.Fatalf("block size %d, want 5", len(b))
		}
	}
}

func TestStepTimesPopulated(t *testing.T) {
	g := gen.Grid2D(50, 50, true)
	res := BCC(g, Options{Seed: 10})
	if res.Times.Total() <= 0 {
		t.Fatal("step times not recorded")
	}
	if res.AuxBytes <= 0 {
		t.Fatal("aux bytes not estimated")
	}
}

func TestLargerGraphsAgainstSeq(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, g := range []*graph.Graph{
		gen.RMAT(12, 8, 21),
		gen.Grid2D(70, 70, true),
		gen.KNN(4000, 5, 22),
		gen.RoadLike(60, 60, 0.1, 23),
		gen.SampledGrid(50, 50, 0.6, 24),
	} {
		res := BCC(g, Options{Seed: 11})
		ref := seqbcc.BCC(g)
		if res.NumBCC != ref.NumBCC() {
			t.Fatalf("NumBCC %d != %d (n=%d m=%d)", res.NumBCC, ref.NumBCC(),
				g.NumVertices(), g.NumEdges())
		}
		if !check.Equal(res.Blocks(), ref.Blocks) {
			t.Fatal("blocks differ on large graph")
		}
	}
}
