package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// BenchmarkBCC measures one full FAST-BCC run per iteration, allocating all
// auxiliary state from the heap each time (the one-shot API).
func BenchmarkBCC(b *testing.B) {
	g := gen.RMAT(16, 8, 0xBC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BCC(g, Options{Seed: 7})
	}
}

// BenchmarkBCCScratch is the serving pattern: repeated BCC runs sharing one
// arena, so the ~16n int32 of per-run auxiliary buffers are recycled
// instead of re-allocated. Compare allocs/op against BenchmarkBCC.
func BenchmarkBCCScratch(b *testing.B) {
	g := gen.RMAT(16, 8, 0xBC)
	sc := graph.NewScratch()
	BCC(g, Options{Seed: 7, Scratch: sc}) // warm the arena
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BCC(g, Options{Seed: 7, Scratch: sc})
	}
}
