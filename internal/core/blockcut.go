package core

import (
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
)

// BlockCutTree is the block-cut tree (block forest) of a graph: one node
// per block and one per articulation point, with an edge whenever the
// articulation point belongs to the block. It is the standard substrate
// for the applications the paper cites (betweenness/closeness centrality
// decomposition, planarity testing, network robustness) and for the
// path-query index in internal/bctree.
//
// The tree is stored flat: block nodes get ids 0..NumBlocks-1 (in dense
// label order), cut nodes follow, and adjacency is one CSR over all nodes.
// Every array is dense int32 — no maps — so construction is a handful of
// parallel passes and the structure can be handed to the graph/etour/rmq
// machinery directly.
type BlockCutTree struct {
	// NumBlocks is the number of block nodes (ids 0..NumBlocks-1).
	NumBlocks int
	// Cuts lists the articulation points in increasing vertex order; cut
	// node i corresponds to tree node NumBlocks + i.
	Cuts []int32
	// CutNode maps a vertex to its cut node id, or -1 when the vertex is
	// not an articulation point.
	CutNode []int32
	// BlockOf maps a dense label (Result.Label) to its block node id, or
	// -1 for root-singleton labels that are not blocks.
	BlockOf []int32
	// Offsets and Adj are the CSR adjacency over all NumNodes() tree
	// nodes: Adj[Offsets[x]:Offsets[x+1]] lists the neighbors of node x,
	// sorted ascending. Every edge joins a block node and a cut node.
	Offsets []int32
	Adj     []int32
}

// NumNodes returns the total node count (blocks + cuts).
func (t *BlockCutTree) NumNodes() int { return len(t.Offsets) - 1 }

// Neighbors returns the tree neighbors of node x (sorted ascending).
func (t *BlockCutTree) Neighbors(x int32) []int32 {
	return t.Adj[t.Offsets[x]:t.Offsets[x+1]]
}

// Degree returns the number of tree neighbors of node x.
func (t *BlockCutTree) Degree(x int32) int {
	return int(t.Offsets[x+1] - t.Offsets[x])
}

// AsGraph returns the tree as a *graph.Graph sharing the CSR arrays, so
// the connectivity/Euler-tour machinery can run over it directly. The
// view must be treated as immutable.
func (t *BlockCutTree) AsGraph() *graph.Graph {
	return &graph.Graph{N: int32(t.NumNodes()), Offsets: t.Offsets, Adj: t.Adj}
}

// ForestEdges returns the tree edges, each once with U < W. Block ids
// precede cut ids and every edge joins a block to a cut, so U is always
// the block-side endpoint.
func (t *BlockCutTree) ForestEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(t.Adj)/2)
	for x := 0; x < t.NumBlocks; x++ {
		for _, w := range t.Neighbors(int32(x)) {
			out = append(out, graph.Edge{U: int32(x), W: w})
		}
	}
	return out
}

// BlockCutTree derives the block-cut tree from the decomposition. The
// tree is computed on first use (together with ArticulationPoints) and
// cached, guarded by a sync.Once: concurrent first calls on a shared
// Result are safe and all return the same tree, which must be treated as
// immutable. Serving constructors precompute the cache before publishing
// (see PrecomputeTopology).
func (r *Result) BlockCutTree() *BlockCutTree {
	r.precomputeTopology(nil)
	return r.bct
}

// buildBlockCutTree is the one construction pass behind BlockCutTree:
// dense block ids by a prefix sum over labels, cut ids by rank in cuts,
// and the adjacency CSR via the parallel atomic-free graph builder.
func buildBlockCutTree(e *parallel.Exec, r *Result, cuts []int32) *BlockCutTree {
	n := len(r.Label)
	t := &BlockCutTree{
		Cuts:    cuts,
		CutNode: make([]int32, n),
		BlockOf: make([]int32, r.NumLabels),
	}
	// Dense block ids: BlockOf[l] = #block labels before l, or -1.
	e.For(r.NumLabels, func(l int) {
		if r.Head[l] != -1 {
			t.BlockOf[l] = 1
		} else {
			t.BlockOf[l] = 0
		}
	})
	t.NumBlocks = int(prim.ExclusiveScanInt32In(e, t.BlockOf))
	e.For(r.NumLabels, func(l int) {
		if r.Head[l] == -1 {
			t.BlockOf[l] = -1
		}
	})
	parallel.FillIn(e, t.CutNode, -1)
	e.For(len(cuts), func(i int) {
		t.CutNode[cuts[i]] = int32(t.NumBlocks + i)
	})

	// Tree edges, duplicate-free by construction: an articulation point a
	// belongs to the blocks it heads (one link per such label) and, when a
	// is not a root, to the block of its own label (one link per cut
	// vertex). The two sources never collide: a head link (B_l, cut(h))
	// equals a member link (B_{Label[v]}, cut(v)) only if v == h and
	// Label[h] == l, impossible because a head always lies outside the
	// component it heads (Label[Head[l]] != l).
	headLinks := prim.PackIndicesIn(e, r.NumLabels, func(l int) bool {
		h := r.Head[l]
		return h != -1 && t.CutNode[h] != -1
	})
	memberLinks := prim.PackIndicesIn(e, n, func(v int) bool {
		return t.CutNode[v] != -1 && r.Parent[v] != -1
	})
	links := make([]graph.Edge, len(headLinks)+len(memberLinks))
	e.For(len(headLinks), func(i int) {
		l := headLinks[i]
		links[i] = graph.Edge{U: t.BlockOf[l], W: t.CutNode[r.Head[l]]}
	})
	base := len(headLinks)
	e.For(len(memberLinks), func(i int) {
		v := memberLinks[i]
		links[base+i] = graph.Edge{U: t.BlockOf[r.Label[v]], W: t.CutNode[v]}
	})
	bg, err := graph.FromEdgesIn(e, t.NumBlocks+len(cuts), links, nil)
	if err != nil {
		panic("core: block-cut tree edges out of range: " + err.Error())
	}
	t.Offsets, t.Adj = bg.Offsets, bg.Adj
	return t
}

// IsTree verifies the block-cut structure is a forest: #edges == #nodes -
// #trees. Used by tests and as a sanity check.
func (t *BlockCutTree) IsTree() bool {
	nodes := t.NumNodes()
	edges := len(t.Adj) / 2
	// Count connected components of the tree with a scratch DFS.
	visited := make([]bool, nodes)
	comps := 0
	stack := []int32{}
	for s := 0; s < nodes; s++ {
		if visited[s] {
			continue
		}
		comps++
		visited[s] = true
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range t.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return edges == nodes-comps
}
