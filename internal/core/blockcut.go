package core

import "sort"

// BlockCutTree is the block-cut tree (block forest) of a graph: one node
// per block and one per articulation point, with an edge whenever the
// articulation point belongs to the block. It is the standard substrate
// for the applications the paper cites (betweenness/closeness centrality
// decomposition, planarity testing, network robustness).
type BlockCutTree struct {
	// NumBlocks is the number of block nodes (ids 0..NumBlocks-1).
	NumBlocks int
	// Cuts lists the articulation points; cut node i corresponds to
	// tree node NumBlocks + i.
	Cuts []int32
	// Adj[node] lists the tree neighbors of each node (block nodes first,
	// then cut nodes).
	Adj [][]int32
	// BlockOf maps a dense label (Result.Label) to its block node id, or
	// -1 for root-singleton labels that are not blocks.
	BlockOf []int32
}

// BlockCutTree derives the block-cut tree from the decomposition.
func (r *Result) BlockCutTree() *BlockCutTree {
	n := len(r.Label)
	t := &BlockCutTree{BlockOf: make([]int32, r.NumLabels)}
	// Blocks: labels with a head.
	for l := range t.BlockOf {
		t.BlockOf[l] = -1
	}
	for l, h := range r.Head {
		if h != -1 {
			t.BlockOf[l] = int32(t.NumBlocks)
			t.NumBlocks++
		}
	}
	t.Cuts = r.ArticulationPoints()
	cutNode := make(map[int32]int32, len(t.Cuts))
	for i, v := range t.Cuts {
		cutNode[v] = int32(t.NumBlocks + i)
	}
	t.Adj = make([][]int32, t.NumBlocks+len(t.Cuts))
	link := func(block, cut int32) {
		t.Adj[block] = append(t.Adj[block], cut)
		t.Adj[cut] = append(t.Adj[cut], block)
	}
	// An articulation point a belongs to: the blocks it heads, and (when
	// a is not a root) the block of its own label.
	seen := map[[2]int32]bool{}
	for l, h := range r.Head {
		if h == -1 {
			continue
		}
		if c, ok := cutNode[h]; ok {
			key := [2]int32{t.BlockOf[l], c}
			if !seen[key] {
				seen[key] = true
				link(t.BlockOf[l], c)
			}
		}
	}
	for v := 0; v < n; v++ {
		c, ok := cutNode[int32(v)]
		if !ok || r.Parent[v] == -1 {
			continue
		}
		b := t.BlockOf[r.Label[v]]
		key := [2]int32{b, c}
		if !seen[key] {
			seen[key] = true
			link(b, c)
		}
	}
	for _, a := range t.Adj {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	return t
}

// IsTree verifies the block-cut structure is a forest with one tree per
// 2-edge-connected... per connected component containing at least one
// block: #edges == #nodes - #trees. Used by tests and as a sanity check.
func (t *BlockCutTree) IsTree() bool {
	nodes := len(t.Adj)
	edges := 0
	for _, a := range t.Adj {
		edges += len(a)
	}
	edges /= 2
	// Count connected components of the tree with a scratch DFS.
	visited := make([]bool, nodes)
	comps := 0
	stack := []int32{}
	for s := 0; s < nodes; s++ {
		if visited[s] {
			continue
		}
		comps++
		visited[s] = true
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range t.Adj[v] {
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return edges == nodes-comps
}
