package etour

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSubtreeSizes(t *testing.T) {
	g := gen.Chain(10)
	r, comp := rootForest(t, g)
	sizes := r.SubtreeSizes()
	var total int32
	// Root subtree = whole tree; leaf subtrees = 1.
	for v := 0; v < 10; v++ {
		if comp[v] == int32(v) && sizes[v] != 10 {
			t.Fatalf("root subtree size %d", sizes[v])
		}
		if sizes[v] < 1 || sizes[v] > 10 {
			t.Fatalf("size[%d] = %d", v, sizes[v])
		}
		total += sizes[v]
	}
	// Sum of subtree sizes = sum of depths + n (each vertex counted once
	// per ancestor incl. itself); on a path rooted somewhere it is fixed by
	// the shape. Cheaper check: child sizes sum to parent size - 1.
	for v := 0; v < 10; v++ {
		var kids int32
		for w := 0; w < 10; w++ {
			if r.Parent[w] == int32(v) {
				kids += sizes[w]
			}
		}
		if kids != sizes[v]-1 {
			t.Fatalf("children of %d sum to %d, want %d", v, kids, sizes[v]-1)
		}
	}
}

func TestSubtreeSizesRandom(t *testing.T) {
	g := gen.RandomTree(200, 3)
	r, _ := rootForest(t, g)
	sizes := r.SubtreeSizes()
	for v := 0; v < 200; v++ {
		var kids int32
		for w := 0; w < 200; w++ {
			if r.Parent[w] == int32(v) {
				kids += sizes[w]
			}
		}
		if kids != sizes[v]-1 {
			t.Fatalf("subtree size identity broken at %d", v)
		}
	}
}

func TestIsAncestor(t *testing.T) {
	g := gen.RandomTree(100, 4)
	r, _ := rootForest(t, g)
	chainAnc := func(u, v int32) bool {
		for v != -1 {
			if v == u {
				return true
			}
			v = r.Parent[v]
		}
		return false
	}
	for u := int32(0); u < 100; u += 3 {
		for v := int32(0); v < 100; v += 5 {
			if r.IsAncestor(u, v) != chainAnc(u, v) {
				t.Fatalf("IsAncestor(%d,%d) mismatch", u, v)
			}
		}
	}
}

func TestDepths(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Chain(50),
		gen.Star(30),
		gen.RandomTree(150, 5),
		gen.Disjoint(gen.Chain(10), gen.Star(8), gen.RandomTree(20, 6)),
	} {
		r, _ := rootForest(t, g)
		got := r.Depths()
		for v := 0; v < g.NumVertices(); v++ {
			want := int32(0)
			x := int32(v)
			for r.Parent[x] != -1 {
				x = r.Parent[x]
				want++
			}
			if got[v] != want {
				t.Fatalf("depth[%d] = %d, want %d", v, got[v], want)
			}
		}
	}
}

func TestDepthsIsolated(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, W: 1}})
	r, _ := rootForest(t, g)
	d := r.Depths()
	if d[2] != 0 {
		t.Fatalf("isolated depth = %d", d[2])
	}
}
