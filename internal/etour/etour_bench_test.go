package etour

import (
	"testing"

	"repro/internal/conn"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Microbenchmarks for the Rooting step: the paper attributes FAST-BCC's win
// on large-diameter graphs largely to replacing BFS rooting (span ∝ D) with
// ETT + list ranking (polylog span). These benches isolate that cost.

func benchForest(g *graph.Graph) ([]graph.Edge, []int32) {
	cc := conn.Connectivity(g, conn.Options{Seed: 7, WantForest: true})
	return cc.Forest, cc.Comp
}

func BenchmarkRootChain(b *testing.B) {
	g := gen.Chain(200000)
	forest, comp := benchForest(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Root(g.NumVertices(), forest, comp)
	}
}

func BenchmarkRootGrid(b *testing.B) {
	g := gen.Grid2D(450, 450, true)
	forest, comp := benchForest(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Root(g.NumVertices(), forest, comp)
	}
}

func BenchmarkRootRMAT(b *testing.B) {
	g := gen.RMAT(15, 8, 3)
	forest, comp := benchForest(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Root(g.NumVertices(), forest, comp)
	}
}

func BenchmarkRootStar(b *testing.B) {
	// Adversarial for list ranking: one vertex owns half the arcs.
	g := gen.Star(200000)
	forest, comp := benchForest(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Root(g.NumVertices(), forest, comp)
	}
}
