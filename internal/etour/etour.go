// Package etour implements the Euler tour technique (ETT) used by the
// Rooting step of FAST-BCC (and of Tarjan–Vishkin).
//
// Given a spanning forest produced by the First-CC step, ETT roots every
// tree at its component representative: each undirected tree edge is
// replicated into two directed arcs, arcs are semisorted by source vertex
// (a stable counting sort), a circular successor list — the Euler circuit —
// is built, and list ranking flattens the circuit into an array. From arc
// ranks we derive, per vertex, the first/last appearance on the tour and
// the parent, exactly the tags Alg. 1 needs. The tours of all trees are
// concatenated, so one global array serves the later RMQ-based Tagging.
//
// List ranking coarsens with ~√m samples as described in Sec. 5 of the
// paper: samples walk to the next sample in parallel, a prefix pass over
// the (short) sample chains assigns global offsets, and a second parallel
// walk scatters ranks. Work is O(n); span is proportional to the largest
// inter-sample gap (√n in expectation for the tours generated here).
package etour

import (
	"math"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
)

// Rooted is the result of rooting a spanning forest.
type Rooted struct {
	// Parent[v] is v's parent in its rooted tree; -1 for tree roots.
	Parent []int32
	// First and Last are each vertex's first and last position on the
	// global tour array (First == Last for isolated vertices).
	First, Last []int32
	// Tour lists the vertex at every tour position. Its length is
	// 2n - NumTrees: each tree of size s contributes 2s-1 contiguous slots.
	Tour []int32
	// NumTrees is the number of trees in the forest (= #components).
	NumTrees int
}

// Root roots the spanning forest given by forest edges over n vertices.
// comp[v] must be the component representative of v (comp[r] == r), as
// produced by conn.Connectivity; each tree is rooted at its representative.
// Equivalent to RootScratch with a nil arena.
func Root(n int, forest []graph.Edge, comp []int32) *Rooted {
	return RootScratch(n, forest, comp, nil)
}

// RootScratch is Root drawing its temporaries — and the returned First,
// Last, and Tour arrays — from sc (which may be nil). The caller owns the
// arena-backed result arrays; Parent is always freshly allocated because it
// outlives the pipeline run inside core.Result. Equivalent to RootIn with a
// nil execution context.
func RootScratch(n int, forest []graph.Edge, comp []int32, sc *graph.Scratch) *Rooted {
	return RootIn(nil, n, forest, comp, sc)
}

// RootIn is RootScratch running on the execution context e (nil = the
// process-global default).
func RootIn(e *parallel.Exec, n int, forest []graph.Edge, comp []int32, sc *graph.Scratch) *Rooted {
	r := &Rooted{
		Parent: make([]int32, n),
		First:  sc.GetInt32(n),
		Last:   sc.GetInt32(n),
	}
	parallel.FillIn(e, r.Parent, -1)
	if n == 0 {
		r.Tour = []int32{}
		return r
	}

	// Tree sizes and per-tree base offsets in the concatenated tour.
	// size[root] = #vertices; base[root] = start slot of its tour segment.
	size := sc.GetInt32(n)
	parallel.FillIn(e, size, 0)
	for v := 0; v < n; v++ {
		size[comp[v]]++
	}
	numTrees := 0
	tourLen := int32(0)
	base := sc.GetInt32(n)
	for v := 0; v < n; v++ {
		if comp[v] == int32(v) {
			numTrees++
			base[v] = tourLen
			tourLen += 2*size[v] - 1
		}
	}
	r.NumTrees = numTrees
	r.Tour = sc.GetInt32(int(tourLen))

	m2 := 2 * len(forest)
	if m2 == 0 {
		// Forest with no edges: every vertex is isolated.
		e.For(n, func(v int) {
			r.First[v] = base[v]
			r.Last[v] = base[v]
			r.Tour[base[v]] = int32(v)
		})
		sc.PutInt32(size, base)
		return r
	}

	// Directed arcs: arc 2i = (U→W), arc 2i+1 = (W→U).
	src := sc.GetInt32(m2)
	dst := sc.GetInt32(m2)
	e.ForBlock(len(forest), parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fe := forest[i]
			src[2*i], dst[2*i] = fe.U, fe.W
			src[2*i+1], dst[2*i+1] = fe.W, fe.U
		}
	})
	// Semisort arcs by source vertex. perm and off are arena-backed and
	// returned below with the other temporaries.
	perm, off := prim.CountingSortByKeyArena(e, m2, int32(n), func(i int) int32 { return src[i] }, sc)
	pos := sc.GetInt32(m2) // original arc -> sorted position
	e.For(m2, func(j int) { pos[perm[j]] = int32(j) })

	// Euler circuit successor: succ(u→v) = the arc after (v→u) in v's
	// bucket, cyclically. Then break each circuit before its root's first
	// outgoing arc so list ranking sees one chain per tree.
	next := sc.GetInt32(m2)
	e.For(m2, func(j int) {
		orig := perm[j]
		twin := pos[orig^1] // sorted position of the reverse arc
		v := dst[orig]      // src of the twin
		s := twin + 1
		if s >= off[v+1] {
			s = off[v]
		}
		root := comp[v]
		if s == off[root] {
			s = -1 // circuit break: succ would re-enter the tour start
		}
		next[j] = s
	})

	rank := listRank(e, next, off, comp, src, perm, n, sc)

	// Scatter the tour, first/last, and parents.
	// Slot of arc j (sorted) = base(tree) + rank[j] + 1 holds dst(arc).
	// Slot base(tree) holds the root.
	const inf = int32(math.MaxInt32)
	parallel.FillIn(e, r.First, inf)
	parallel.FillIn(e, r.Last, -1)
	e.For(n, func(v int) {
		if comp[v] == int32(v) {
			b := base[v]
			r.Tour[b] = int32(v)
			r.First[v] = b
			r.Last[v] = b
		} else if size[comp[v]] == 1 {
			panic("etour: non-representative vertex in singleton tree")
		}
	})
	// Isolated non-root vertices cannot exist (comp[v] != v implies an
	// edge path to the rep), so every remaining vertex appears as some
	// arc head.
	e.For(m2, func(j int) {
		orig := perm[j]
		head := dst[orig]
		slot := base[comp[head]] + rank[j] + 1
		r.Tour[slot] = head
		prim.WriteMin(&r.First[head], slot)
		prim.WriteMax(&r.Last[head], slot)
	})
	e.ForBlock(len(forest), parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			down := pos[2*i] // (U→W)
			up := pos[2*i+1] // (W→U)
			fe := forest[i]
			if rank[down] < rank[up] {
				r.Parent[fe.W] = fe.U
			} else {
				r.Parent[fe.U] = fe.W
			}
		}
	})
	sc.PutInt32(size, base, src, dst, pos, next, rank, perm, off)
	return r
}

// listRank computes, for every arc in the sorted arc array, its distance
// from the start of its tree's chain (the root's first outgoing arc).
// next[j] = -1 terminates a chain.
func listRank(e *parallel.Exec, next []int32, off []int32, comp []int32, src []int32, perm []int32, n int, sc *graph.Scratch) []int32 {
	m2 := len(next)
	rank := sc.GetInt32(m2)
	step := int(math.Sqrt(float64(m2)))
	if step < 1 {
		step = 1
	}
	// A sorted arc is a sample every step positions, and chain heads
	// (roots' first outgoing arcs) must be samples. Both tests are O(1),
	// so the sample set is packed straight from the predicate — no marker
	// array.
	isHead := func(j int32) bool {
		v := src[perm[j]]
		return comp[v] == v && j == off[v]
	}
	samples := prim.PackIndicesArena(e, m2, func(j int) bool {
		return j%step == 0 || isHead(int32(j))
	}, sc)
	heads := make([]int32, 0, n/step+8)
	for _, s := range samples {
		if isHead(s) {
			heads = append(heads, s)
		}
	}
	// Phase 1: each sample walks to the next sample (or chain end),
	// recording the hop count and the sample reached.
	sampleIdx := sc.GetInt32(m2) // sorted arc -> index in samples, -1 otherwise
	parallel.FillIn(e, sampleIdx, -1)
	e.For(len(samples), func(i int) { sampleIdx[samples[i]] = int32(i) })
	nextSample := sc.GetInt32(len(samples)) // index into samples, -1 at end
	gap := sc.GetInt32(len(samples))
	e.ForGrain(len(samples), 1, func(i int) {
		j := samples[i]
		d := int32(0)
		for {
			j = next[j]
			d++
			if j == -1 {
				nextSample[i] = -1
				break
			}
			if si := sampleIdx[j]; si >= 0 {
				nextSample[i] = si
				break
			}
		}
		gap[i] = d
	})
	// Phase 2: walk the sample chains sequentially (they are short),
	// one chain per tree, assigning each sample its global rank.
	sampleRank := sc.GetInt32(len(samples))
	e.ForGrain(len(heads), 1, func(h int) {
		i := sampleIdx[heads[h]]
		r := int32(0)
		for i != -1 {
			sampleRank[i] = r
			r += gap[i]
			i = nextSample[i]
		}
	})
	// Phase 3: re-walk from each sample scattering ranks to intermediates.
	e.ForGrain(len(samples), 1, func(i int) {
		j := samples[i]
		r := sampleRank[i]
		rank[j] = r
		for {
			j = next[j]
			if j == -1 || sampleIdx[j] >= 0 {
				break
			}
			r++
			rank[j] = r
		}
	})
	sc.PutInt32(sampleIdx, samples, nextSample, gap, sampleRank)
	return rank
}
