package etour

import (
	"repro/internal/parallel"
)

// SubtreeSizes returns the number of vertices in each vertex's subtree,
// derived in O(n) from the tour interval: a subtree of size s spans exactly
// 2s-1 tour slots. This is the classic ETT application ("maintaining
// subtree or tree path sums", Sec. 2 of the paper).
func (r *Rooted) SubtreeSizes() []int32 {
	n := len(r.First)
	sizes := make([]int32, n)
	parallel.For(n, func(v int) {
		sizes[v] = (r.Last[v]-r.First[v])/2 + 1
	})
	return sizes
}

// IsAncestor reports whether u is an ancestor of v (u == v counts), via
// tour-interval nesting — the same O(1) test Alg. 1's Back predicate uses.
func (r *Rooted) IsAncestor(u, v int32) bool {
	return r.First[u] <= r.First[v] && r.Last[u] >= r.Last[v]
}

// Depths returns each vertex's depth (root = 0), computed in O(n) total
// work by counting direction flips along the tour: walking the tour, a
// step from parent to child descends, child to parent ascends. Depth of a
// vertex is the depth at its first appearance.
func (r *Rooted) Depths() []int32 {
	n := len(r.First)
	depth := make([]int32, n)
	if n == 0 {
		return depth
	}
	// Tour segments per tree are contiguous; a slot's depth equals the
	// number of ancestors-so-far. Because First[v] is v's first appearance
	// and its parent's first appearance precedes it, depth[v] =
	// depth[parent]+1 — computable by pointer doubling or, simpler here,
	// by walking tour slots once (sequential per tree segment, parallel
	// over trees at the caller's discretion). We process the whole tour
	// sequentially: the tour length is O(n).
	d := int32(0)
	for t := 1; t < len(r.Tour); t++ {
		u, v := r.Tour[t-1], r.Tour[t]
		switch {
		case r.Parent[v] == u:
			// Each downward arc appears exactly once, at v's first
			// appearance.
			d++
			depth[v] = d
		case r.Parent[u] == v:
			d--
		default:
			// Tree boundary in the concatenated tour: a new root at depth 0.
			d = 0
		}
	}
	return depth
}
