package etour

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/conn"
	"repro/internal/gen"
	"repro/internal/graph"
)

// rootForest runs First-CC on g and roots the resulting forest.
func rootForest(t *testing.T, g *graph.Graph) (*Rooted, []int32) {
	t.Helper()
	cc := conn.Connectivity(g, conn.Options{Seed: 99, WantForest: true})
	return Root(g.NumVertices(), cc.Forest, cc.Comp), cc.Comp
}

// validate checks the Euler-tour invariants that Alg. 1 depends on.
func validate(t *testing.T, n int, r *Rooted, comp []int32) {
	t.Helper()
	if len(r.Tour) != 2*n-r.NumTrees {
		t.Fatalf("tour length %d, want %d", len(r.Tour), 2*n-r.NumTrees)
	}
	for v := 0; v < n; v++ {
		f, l := r.First[v], r.Last[v]
		if f < 0 || l >= int32(len(r.Tour)) || f > l {
			t.Fatalf("vertex %d: first=%d last=%d", v, f, l)
		}
		if r.Tour[f] != int32(v) || r.Tour[l] != int32(v) {
			t.Fatalf("vertex %d: tour[first]=%d tour[last]=%d", v, r.Tour[f], r.Tour[l])
		}
		if comp[v] == int32(v) {
			if r.Parent[v] != -1 {
				t.Fatalf("root %d has parent %d", v, r.Parent[v])
			}
		} else {
			p := r.Parent[v]
			if p < 0 || int(p) >= n {
				t.Fatalf("vertex %d parent %d invalid", v, p)
			}
			// Parent interval strictly contains child interval.
			if !(r.First[p] <= r.First[v] && r.Last[p] >= r.Last[v]) {
				t.Fatalf("vertex %d interval [%d,%d] not inside parent %d [%d,%d]",
					v, r.First[v], r.Last[v], p, r.First[p], r.Last[p])
			}
			if r.First[p] == r.First[v] {
				t.Fatalf("child %d shares first with parent %d", v, p)
			}
		}
	}
	// Every vertex appears on the tour only inside [first, last].
	for slot, v := range r.Tour {
		if r.First[v] > int32(slot) || r.Last[v] < int32(slot) {
			t.Fatalf("slot %d holds %d outside its [first,last]", slot, v)
		}
	}
	// Ancestor relation via intervals must match parent chains: walk each
	// vertex's chain to the root and check interval nesting, and conversely
	// check interval nesting implies ancestry (spot check).
	depth := make([]int32, n)
	for v := 0; v < n; v++ {
		d := int32(0)
		x := int32(v)
		for r.Parent[x] != -1 {
			x = r.Parent[x]
			d++
			if int(d) > n {
				t.Fatalf("parent cycle at %d", v)
			}
		}
		depth[v] = d
		if x != comp[v] {
			t.Fatalf("vertex %d parent chain ends at %d, want rep %d", v, x, comp[v])
		}
	}
	// Consecutive tour slots must be tree edges (the tour walks the tree).
	for i := 1; i < len(r.Tour); i++ {
		u, v := r.Tour[i-1], r.Tour[i]
		if comp[u] != comp[v] {
			continue // tree boundary in the concatenation
		}
		if u == v {
			t.Fatalf("tour repeats vertex %d at %d", u, i)
		}
		if r.Parent[u] != v && r.Parent[v] != u {
			t.Fatalf("tour step %d: (%d,%d) is not a tree edge", i, u, v)
		}
	}
}

func TestRootChain(t *testing.T) {
	g := gen.Chain(500)
	r, comp := rootForest(t, g)
	validate(t, 500, r, comp)
	if r.NumTrees != 1 {
		t.Fatalf("NumTrees = %d", r.NumTrees)
	}
}

func TestRootStar(t *testing.T) {
	g := gen.Star(100)
	r, comp := rootForest(t, g)
	validate(t, 100, r, comp)
}

func TestRootRandomTrees(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := gen.RandomTree(300, seed)
		r, comp := rootForest(t, g)
		validate(t, 300, r, comp)
	}
}

func TestRootGrid(t *testing.T) {
	g := gen.Grid2D(20, 30, true)
	r, comp := rootForest(t, g)
	validate(t, 600, r, comp)
}

func TestRootForestMultipleTrees(t *testing.T) {
	g := gen.Disjoint(gen.Chain(50), gen.Cycle(60), gen.Star(40), gen.Clique(10))
	r, comp := rootForest(t, g)
	validate(t, g.NumVertices(), r, comp)
	if r.NumTrees != 4 {
		t.Fatalf("NumTrees = %d, want 4", r.NumTrees)
	}
}

func TestRootIsolatedVertices(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{{U: 1, W: 2}})
	r, comp := rootForest(t, g)
	validate(t, 5, r, comp)
	if r.NumTrees != 4 {
		t.Fatalf("NumTrees = %d, want 4", r.NumTrees)
	}
	// Isolated vertices occupy exactly one slot.
	for _, v := range []int32{0, 3, 4} {
		if r.First[v] != r.Last[v] {
			t.Fatalf("isolated %d: first != last", v)
		}
	}
}

func TestRootEmpty(t *testing.T) {
	r := Root(0, nil, nil)
	if len(r.Tour) != 0 || r.NumTrees != 0 {
		t.Fatal("empty root wrong")
	}
}

func TestRootSingleEdge(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}})
	r, comp := rootForest(t, g)
	validate(t, 2, r, comp)
	root := comp[0]
	other := 1 - root
	if r.First[root] != 0 || r.Last[root] != 2 {
		t.Fatalf("root interval [%d,%d]", r.First[root], r.Last[root])
	}
	if r.First[other] != 1 || r.Last[other] != 1 {
		t.Fatalf("leaf interval [%d,%d]", r.First[other], r.Last[other])
	}
}

func TestSubtreeIntervalNesting(t *testing.T) {
	// Property: for any two vertices in one tree, intervals are either
	// nested (ancestor) or disjoint — never partially overlapping.
	g := gen.RandomTree(400, 7)
	r, comp := rootForest(t, g)
	_ = comp
	n := 400
	for a := 0; a < n; a += 7 {
		for b := a + 1; b < n; b += 11 {
			fa, la := r.First[a], r.Last[a]
			fb, lb := r.First[b], r.Last[b]
			nestedAB := fa <= fb && la >= lb
			nestedBA := fb <= fa && lb >= la
			disjoint := la < fb || lb < fa
			if !nestedAB && !nestedBA && !disjoint {
				t.Fatalf("intervals of %d [%d,%d] and %d [%d,%d] partially overlap",
					a, fa, la, b, fb, lb)
			}
		}
	}
}

func TestAncestorViaIntervalsMatchesParentChain(t *testing.T) {
	g := gen.RandomTree(200, 8)
	r, comp := rootForest(t, g)
	_ = comp
	n := 200
	anc := func(u, v int) bool { // u ancestor of v via parent chain
		x := int32(v)
		for x != -1 {
			if x == int32(u) {
				return true
			}
			x = r.Parent[x]
		}
		return false
	}
	for u := 0; u < n; u += 3 {
		for v := 0; v < n; v += 5 {
			byInterval := r.First[u] <= r.First[v] && r.Last[u] >= r.Last[v]
			if byInterval != anc(u, v) {
				t.Fatalf("ancestor(%d,%d): interval=%v chain=%v", u, v, byInterval, anc(u, v))
			}
		}
	}
}

func TestEachArcOnTourTwice(t *testing.T) {
	// Every tree edge must appear exactly twice as consecutive tour slots
	// (once per direction).
	g := gen.RandomTree(150, 9)
	r, comp := rootForest(t, g)
	counts := map[[2]int32]int{}
	for i := 1; i < len(r.Tour); i++ {
		u, v := r.Tour[i-1], r.Tour[i]
		if comp[u] != comp[v] {
			continue
		}
		counts[[2]int32{u, v}]++
	}
	for k, c := range counts {
		if c != 1 {
			t.Fatalf("arc %v appears %d times", k, c)
		}
		if counts[[2]int32{k[1], k[0]}] != 1 {
			t.Fatalf("reverse of arc %v missing", k)
		}
	}
	if len(counts) != 2*(150-1) {
		t.Fatalf("tour has %d arcs, want %d", len(counts), 2*149)
	}
}

func TestRootQuickRandomForests(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		// Random graph: may be disconnected.
		m := rng.Intn(2 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			u, w := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != w {
				edges = append(edges, graph.Edge{U: u, W: w})
			}
		}
		g := graph.MustFromEdges(n, edges)
		cc := conn.Connectivity(g, conn.Options{Seed: uint64(seed), WantForest: true})
		r := Root(n, cc.Forest, cc.Comp)
		// Minimal invariants (full validate uses t; re-check key ones).
		if len(r.Tour) != 2*n-r.NumTrees {
			return false
		}
		for v := 0; v < n; v++ {
			if r.Tour[r.First[v]] != int32(v) || r.Tour[r.Last[v]] != int32(v) {
				return false
			}
			if cc.Comp[v] == int32(v) && r.Parent[v] != -1 {
				return false
			}
			if cc.Comp[v] != int32(v) {
				p := r.Parent[v]
				if p < 0 || !(r.First[p] <= r.First[v] && r.Last[p] >= r.Last[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
