package bfsbcc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
)

func assertMatchesSeq(t *testing.T, g *graph.Graph, opt Options) {
	t.Helper()
	res := BCC(g, opt)
	ref := seqbcc.BCC(g)
	if res.NumBCC != ref.NumBCC() {
		t.Fatalf("NumBCC = %d, want %d", res.NumBCC, ref.NumBCC())
	}
	if !check.Equal(res.Blocks(), ref.Blocks) {
		t.Fatalf("blocks differ:\n bfs: %s\n seq: %s",
			check.Describe(res.Blocks()), check.Describe(ref.Blocks))
	}
}

func TestStructuredGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"triangle", gen.Clique(3)},
		{"clique", gen.Clique(9)},
		{"chain", gen.Chain(50)},
		{"cycle", gen.Cycle(33)},
		{"star", gen.Star(15)},
		{"barbell", gen.Barbell(4, 4)},
		{"cliquechain", gen.CliqueChain(4, 5)},
		{"grid", gen.Grid2D(7, 8, false)},
		{"torus", gen.Grid2D(7, 8, true)},
		{"tree", gen.RandomTree(70, 1)},
		{"er", gen.ER(90, 180, 2)},
		{"disjoint", gen.Disjoint(gen.Cycle(8), gen.Chain(6), gen.Clique(4))},
		{"edgeless", graph.MustFromEdges(4, nil)},
		{"empty", graph.MustFromEdges(0, nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertMatchesSeq(t, tc.g, Options{Seed: 5})
		})
	}
}

func TestMultiEdgesAndSelfLoops(t *testing.T) {
	cases := [][]graph.Edge{
		{{U: 0, W: 1}, {U: 0, W: 1}},
		{{U: 0, W: 0}, {U: 0, W: 1}, {U: 1, W: 2}},
		{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}, {U: 1, W: 2}},
	}
	for i, edges := range cases {
		g := graph.MustFromEdges(3, edges)
		res := BCC(g, Options{Seed: 1})
		ref := seqbcc.BCC(g)
		if !check.Equal(res.Blocks(), ref.Blocks) {
			t.Fatalf("case %d: %s != %s", i,
				check.Describe(res.Blocks()), check.Describe(ref.Blocks))
		}
	}
}

func TestQuickRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(70)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := BCC(g, Options{Seed: uint64(seed)})
		return check.Equal(res.Blocks(), seqbcc.BCC(g).Blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeDiameterGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Chain(20000),
		gen.Grid2D(60, 60, true),
		gen.RoadLike(40, 40, 0.05, 3),
	} {
		res := BCC(g, Options{Seed: 2})
		ref := seqbcc.BCC(g)
		if res.NumBCC != ref.NumBCC() {
			t.Fatalf("NumBCC %d != %d", res.NumBCC, ref.NumBCC())
		}
	}
}

func TestStepTimes(t *testing.T) {
	g := gen.Grid2D(40, 40, true)
	res := BCC(g, Options{Seed: 3})
	if res.Times.Total() <= 0 || res.AuxBytes <= 0 {
		t.Fatal("metrics not populated")
	}
}
