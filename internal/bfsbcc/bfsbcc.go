// Package bfsbcc implements a GBBS-style space-efficient parallel BCC
// algorithm based on BFS skeletons (Dhulipala, Blelloch, Shun, TOPC 2021),
// the paper's main parallel baseline.
//
// It follows the same skeleton–connectivity framework as FAST-BCC but the
// Rooting and Tagging steps depend on the BFS tree:
//
//  1. First-CC  — connectivity only (no spanning forest needed).
//  2. Rooting   — a multi-source BFS from every component representative
//     builds the spanning trees; span O(Diam(G) log n).
//  3. Tagging   — subtree sizes and preorder numbers are computed by
//     level-by-level bottom-up/top-down traversals of the BFS tree, then
//     low/high fold up the tree; span O(Diam(G) log n) again.
//  4. Last-CC   — identical to FAST-BCC: connectivity over the implicit
//     skeleton with fence and back edges skipped.
//
// The first/last tags here are preorder intervals (first = preorder,
// last = preorder + subtree size - 1) rather than Euler tour positions;
// the fence/back predicates are the same under either numbering. The
// diameter-proportional steps 2–3 are exactly what Fig. 5 of the paper
// shows dominating on large-diameter graphs.
//
// Every parallel loop runs on the execution context of Options.Exec (nil =
// the process-global default), so concurrent serving with this baseline is
// isolated exactly like the fastbcc path: per-run worker caps, no global
// state.
package bfsbcc

import (
	"sync/atomic"
	"time"

	"repro/internal/conn"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
)

// Options configures the baseline.
type Options struct {
	Seed uint64
	// ConnAlg selects the connectivity algorithm (GBBS uses UF-Async).
	ConnAlg conn.Algorithm
	// Exec is the execution context every parallel loop of the run uses
	// (nil = the process-global default).
	Exec *parallel.Exec
}

// BCC computes biconnected components with the BFS-skeleton baseline. The
// result uses the same representation as FAST-BCC (core.Result), so all
// derived queries (Blocks, ArticulationPoints, Bridges) are shared.
func BCC(g *graph.Graph, opt Options) *core.Result {
	n := int(g.N)
	e := opt.Exec
	res := &core.Result{}

	// ---- Step 1: First-CC (labels only) -----------------------------------
	t0 := time.Now()
	cc := conn.Connectivity(g, conn.Options{
		Algorithm: opt.ConnAlg,
		Seed:      opt.Seed,
		Exec:      e,
	})
	res.Times.FirstCC = time.Since(t0)

	// ---- Step 2: Rooting via multi-source BFS ------------------------------
	t0 = time.Now()
	parent := make([]int32, n)
	level := make([]int32, n)
	parallel.FillIn(e, parent, -1)
	parallel.FillIn(e, level, -1)
	frontier := prim.PackIndicesIn(e, n, func(v int) bool { return cc.Comp[v] == int32(v) })
	e.For(len(frontier), func(i int) {
		r := frontier[i]
		parent[r] = r // temporarily self; reset to -1 after BFS
		level[r] = 0
	})
	maxLevel := int32(0)
	levels := [][]int32{frontier}
	for len(frontier) > 0 {
		maxLevel++
		next := expand(e, g, frontier, parent, level, maxLevel)
		frontier = next
		if len(next) > 0 {
			levels = append(levels, next)
		}
	}
	maxLevel = int32(len(levels) - 1)
	e.For(n, func(v int) {
		if parent[v] == int32(v) {
			parent[v] = -1
		}
	})
	res.Parent = parent
	res.Times.Rooting = time.Since(t0)

	// ---- Step 3: Tagging by tree traversals --------------------------------
	t0 = time.Now()
	// Children lists: counting sort vertices by parent (roots bucketed at
	// their own id; they are skipped as "children").
	size := make([]int32, n)
	parallel.FillIn(e, size, 1)
	// Bottom-up subtree sizes, one level at a time (span ∝ D).
	for l := maxLevel; l >= 1; l-- {
		lv := levels[l]
		e.For(len(lv), func(i int) {
			v := lv[i]
			atomic.AddInt32(&size[parent[v]], size[v])
		})
	}
	// Preorder numbers: roots get component-base offsets; children get
	// parent's preorder + 1 + sizes of earlier siblings (adjacency order).
	first := make([]int32, n)
	base := int32(0)
	for _, r := range levels[0] {
		first[r] = base
		base += size[r]
	}
	for l := 0; l < int(maxLevel); l++ {
		lv := levels[l]
		e.ForBlock(len(lv), 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := lv[i]
				off := first[v] + 1
				// Children in adjacency order; adjacency is sorted, so
				// parallel-edge duplicates are adjacent and skipped.
				prev := int32(-1)
				for _, w := range g.Neighbors(v) {
					if w != v && w != prev && parent[w] == v {
						first[w] = off
						off += size[w]
					}
					prev = w
				}
			}
		})
	}
	last := make([]int32, n)
	e.For(n, func(v int) { last[v] = first[v] + size[v] - 1 })
	// w1/w2 over non-tree edges, then low/high folded bottom-up.
	w1 := make([]int32, n)
	w2 := make([]int32, n)
	parallel.CopyIn(e, w1, first)
	parallel.CopyIn(e, w2, first)
	e.ForBlock(n, 256, func(lo, hi int) {
		for v := int32(lo); v < int32(hi); v++ {
			for _, w := range g.Neighbors(v) {
				if w == v || parent[w] == v || parent[v] == w {
					continue
				}
				prim.WriteMin(&w1[v], first[w])
				prim.WriteMax(&w2[v], first[w])
			}
		}
	})
	low := w1
	high := w2 // folded in place bottom-up
	for l := maxLevel; l >= 1; l-- {
		lv := levels[l]
		e.For(len(lv), func(i int) {
			v := lv[i]
			prim.WriteMin(&low[parent[v]], low[v])
			prim.WriteMax(&high[parent[v]], high[v])
		})
	}
	res.Times.Tagging = time.Since(t0)

	// ---- Step 4: Last-CC ----------------------------------------------------
	t0 = time.Now()
	fence := func(u, v int32) bool {
		return first[u] <= low[v] && last[u] >= high[v]
	}
	back := func(u, v int32) bool {
		return first[u] <= first[v] && last[u] >= first[v]
	}
	inSkeleton := func(u, v int32) bool {
		if parent[v] == u || parent[u] == v {
			return !fence(u, v) && !fence(v, u)
		}
		return !back(u, v) && !back(v, u)
	}
	sk := conn.Connectivity(g, conn.Options{
		Algorithm: opt.ConnAlg,
		Seed:      opt.Seed + 0x5eed,
		Filter:    inSkeleton,
		Exec:      e,
	})
	res.Label = sk.NormalizeIn(e)
	res.NumLabels = sk.NumComp
	res.Head = make([]int32, sk.NumComp)
	parallel.FillIn(e, res.Head, -1)
	e.For(n, func(v int) {
		p := parent[v]
		if p != -1 && res.Label[v] != res.Label[p] {
			// Same-value concurrent writes (the head is unique per label);
			// atomic store keeps them defined under the Go memory model.
			atomic.StoreInt32(&res.Head[res.Label[v]], p)
		}
	})
	nBCC := 0
	for _, h := range res.Head {
		if h != -1 {
			nBCC++
		}
	}
	res.NumBCC = nBCC
	res.Times.LastCC = time.Since(t0)

	// GBBS computes fewer tags than FAST-BCC (no Euler tour or RMQ tables):
	// per-vertex arrays (parent, level, size, first, last, w1, w2, comp,
	// labels ≈ 9n) plus connectivity state (≈ 3n) and frontier buffers (2n).
	res.AuxBytes = int64(n) * 4 * (9 + 3 + 2)
	// Pre-publication cache init so LabelSizes, ArticulationPoints, and
	// BlockCutTree stay lock-free afterwards.
	res.PrecomputeLabelSizes()
	res.PrecomputeTopologyIn(e)
	return res
}

func expand(e *parallel.Exec, g *graph.Graph, frontier []int32, parent, level []int32, lvl int32) []int32 {
	nb := (len(frontier) + 255) / 256
	outs := make([][]int32, nb)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*256, (b+1)*256
			if hi > len(frontier) {
				hi = len(frontier)
			}
			var out []int32
			for i := lo; i < hi; i++ {
				u := frontier[i]
				for _, w := range g.Neighbors(u) {
					if atomic.LoadInt32(&parent[w]) == -1 &&
						atomic.CompareAndSwapInt32(&parent[w], -1, u) {
						level[w] = lvl
						out = append(out, w)
					}
				}
			}
			outs[b] = out
		}
	})
	sizes := make([]int32, nb)
	for b := range outs {
		sizes[b] = int32(len(outs[b]))
	}
	total := prim.ExclusiveScanInt32In(e, sizes)
	next := make([]int32, total)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			copy(next[sizes[b]:], outs[b])
		}
	})
	return next
}
