// Package gen produces the deterministic benchmark graphs used to reproduce
// the paper's evaluation (Tab. 2) at laptop scale, plus adversarial shapes
// for tests.
//
// The paper's suite spans five categories whose behavior is determined by
// diameter class and edge/vertex ratio. The generators here control both:
//
//   - social/web graphs   → RMAT power-law graphs (low diameter, skewed)
//   - road graphs         → 2-D grids with random diagonal perturbation
//   - k-NN graphs         → k nearest neighbors of synthetic 2-D points
//   - synthetic graphs    → circular grids, sampled grids, and chains,
//     exactly as defined in Sec. 6 of the paper
//
// All generators take an explicit seed and are reproducible.
package gen

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
)

// Chain returns a path graph of n vertices (the paper's Chn7/Chn8 shape).
func Chain(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), W: int32(i + 1)})
	}
	return graph.MustFromEdges(n, edges)
}

// Cycle returns a cycle of n vertices.
func Cycle(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), W: int32((i + 1) % n)})
	}
	return graph.MustFromEdges(n, edges)
}

// Grid2D returns a rows×cols grid. When circular is true each row and
// column wraps around, matching the paper's SQR/REC graphs ("each row and
// column in grid graphs are circular").
func Grid2D(rows, cols int, circular bool) *graph.Graph {
	n := rows * cols
	id := func(r, c int) int32 { return int32(r*cols + c) }
	edges := make([]graph.Edge, 0, 2*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), W: id(r, c+1)})
			} else if circular && cols > 2 {
				edges = append(edges, graph.Edge{U: id(r, c), W: id(r, 0)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), W: id(r+1, c)})
			} else if circular && rows > 2 {
				edges = append(edges, graph.Edge{U: id(r, c), W: id(0, c)})
			}
		}
	}
	return graph.MustFromEdges(n, edges)
}

// SampledGrid returns a circular rows×cols grid where each edge is kept
// independently with probability p (the paper's SQR'/REC' use p = 0.6).
func SampledGrid(rows, cols int, p float64, seed uint64) *graph.Graph {
	full := Grid2D(rows, cols, true)
	all := full.Edges()
	rng := prim.NewRNG(seed)
	kept := all[:0]
	for _, e := range all {
		if rng.Float64() < p {
			kept = append(kept, e)
		}
	}
	return graph.MustFromEdges(rows*cols, kept)
}

// RoadLike returns a grid-with-perturbation graph that mimics road
// networks: a non-circular grid plus a fraction diag of random diagonal
// shortcuts, giving low average degree and large diameter.
func RoadLike(rows, cols int, diag float64, seed uint64) *graph.Graph {
	base := Grid2D(rows, cols, false)
	edges := base.Edges()
	rng := prim.NewRNG(seed)
	extra := int(diag * float64(rows*cols))
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for i := 0; i < extra; i++ {
		r := rng.Intn(rows - 1)
		c := rng.Intn(cols - 1)
		edges = append(edges, graph.Edge{U: id(r, c), W: id(r+1, c+1)})
	}
	return graph.MustFromEdges(rows*cols, edges)
}

// RMAT returns a recursive-matrix power-law graph with 2^scale vertices and
// about edgeFactor·2^scale undirected edges, using the standard
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) parameters. The result resembles
// social/web graphs: skewed degrees and low diameter. Self-loops are
// dropped; parallel edges are kept (the algorithms tolerate them).
func RMAT(scale int, edgeFactor int, seed uint64) *graph.Graph {
	n := 1 << scale
	m := edgeFactor * n
	edges := make([]graph.Edge, m)
	parallel.ForBlock(m, 4096, func(lo, hi int) {
		rng := prim.NewRNG(seed + uint64(lo)*0x9e3779b9)
		for i := lo; i < hi; i++ {
			u, w := rmatEdge(scale, rng)
			edges[i] = graph.Edge{U: u, W: w}
		}
	})
	kept := edges[:0]
	for _, e := range edges {
		if e.U != e.W {
			kept = append(kept, e)
		}
	}
	return graph.MustFromEdges(n, kept)
}

func rmatEdge(scale int, rng *prim.RNG) (int32, int32) {
	const a, b, c = 0.57, 0.19, 0.19
	var u, w int32
	for bit := 0; bit < scale; bit++ {
		r := rng.Float64()
		switch {
		case r < a:
			// top-left quadrant: no bits set
		case r < a+b:
			w |= 1 << uint(bit)
		case r < a+b+c:
			u |= 1 << uint(bit)
		default:
			u |= 1 << uint(bit)
			w |= 1 << uint(bit)
		}
	}
	return u, w
}

// ER returns an Erdős–Rényi G(n, m) multigraph with m uniformly random
// edges (self-loops dropped, so slightly fewer than m may remain).
func ER(n, m int, seed uint64) *graph.Graph {
	edges := make([]graph.Edge, 0, m)
	rng := prim.NewRNG(seed)
	for i := 0; i < m; i++ {
		u, w := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != w {
			edges = append(edges, graph.Edge{U: u, W: w})
		}
	}
	return graph.MustFromEdges(n, edges)
}

// RandomTree returns a uniformly-attached random tree: vertex i attaches to
// a uniform vertex in [0, i).
func RandomTree(n int, seed uint64) *graph.Graph {
	rng := prim.NewRNG(seed)
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(i)), W: int32(i)})
	}
	return graph.MustFromEdges(n, edges)
}

// Star returns a star with center 0 and n-1 leaves: every edge is a bridge
// and the center is an articulation point of n-1 blocks.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, W: int32(i)})
	}
	return graph.MustFromEdges(n, edges)
}

// Clique returns the complete graph K_n — a single biconnected component.
func Clique(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: int32(i), W: int32(j)})
		}
	}
	return graph.MustFromEdges(n, edges)
}

// CliqueChain returns k cliques of size s chained by single shared
// (articulation) vertices: exactly k biconnected components.
func CliqueChain(k, s int) *graph.Graph {
	if s < 2 {
		panic("gen.CliqueChain: clique size must be >= 2")
	}
	n := k*(s-1) + 1
	var edges []graph.Edge
	for c := 0; c < k; c++ {
		base := c * (s - 1)
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				edges = append(edges, graph.Edge{U: int32(base + i), W: int32(base + j)})
			}
		}
	}
	return graph.MustFromEdges(n, edges)
}

// Barbell returns two cliques of size s joined by a path of length bridge
// (bridge >= 1 edges): the path edges are bridges.
func Barbell(s, bridge int) *graph.Graph {
	n := 2*s + bridge - 1
	var edges []graph.Edge
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			edges = append(edges, graph.Edge{U: int32(i), W: int32(j)})
			edges = append(edges, graph.Edge{U: int32(s + bridge - 1 + i), W: int32(s + bridge - 1 + j)})
		}
	}
	prev := int32(s - 1)
	for i := 0; i < bridge; i++ {
		next := int32(s + i)
		if i == bridge-1 {
			next = int32(s + bridge - 1)
		}
		edges = append(edges, graph.Edge{U: prev, W: next})
		prev = next
	}
	return graph.MustFromEdges(n, edges)
}

// KNN returns the symmetrized k-nearest-neighbor graph of n pseudo-random
// points in the unit square, computed exactly with grid bucketing
// (each vertex gets k edges to its k nearest points, then the union of the
// directed edges is symmetrized, as in the paper's k-NN graphs).
func KNN(n, k int, seed uint64) *graph.Graph {
	if k >= n {
		panic("gen.KNN: k must be < n")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	rng := prim.NewRNG(seed)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	// Bucket points into a g×g grid with ~2 points per cell expected.
	g := 1
	for g*g*2 < n {
		g++
	}
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] * float64(g))
		cy := int(ys[i] * float64(g))
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		return cx, cy
	}
	buckets := make([][]int32, g*g)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		buckets[cy*g+cx] = append(buckets[cy*g+cx], int32(i))
	}
	edges := make([]graph.Edge, n*k)
	parallel.ForBlock(n, 512, func(lo, hi int) {
		type cand struct {
			d float64
			j int32
		}
		cands := make([]cand, 0, 64)
		for i := lo; i < hi; i++ {
			cx, cy := cellOf(i)
			cands = cands[:0]
			// Expand rings of cells until we have k candidates whose
			// distance bound is certain.
			for ring := 0; ; ring++ {
				added := false
				for dy := -ring; dy <= ring; dy++ {
					for dx := -ring; dx <= ring; dx++ {
						if max(abs(dx), abs(dy)) != ring {
							continue
						}
						x, y := cx+dx, cy+dy
						if x < 0 || x >= g || y < 0 || y >= g {
							continue
						}
						added = true
						for _, j := range buckets[y*g+x] {
							if int(j) == i {
								continue
							}
							ddx := xs[i] - xs[j]
							ddy := ys[i] - ys[j]
							cands = append(cands, cand{ddx*ddx + ddy*ddy, j})
						}
					}
				}
				if len(cands) >= k {
					// Points within ring r are guaranteed closer than any
					// point beyond ring r+1 when kth distance <= r/g.
					sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
					bound := float64(ring) / float64(g)
					if cands[k-1].d <= bound*bound || ring >= g {
						break
					}
				}
				if !added && ring > 2*g {
					break // degenerate: scanned everything
				}
			}
			for t := 0; t < k; t++ {
				edges[i*k+t] = graph.Edge{U: int32(i), W: cands[t].j}
			}
		}
	})
	return graph.MustFromEdges(n, edges)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Disjoint returns the disjoint union of the given graphs (vertex ids are
// shifted), for testing multi-component behavior.
func Disjoint(gs ...*graph.Graph) *graph.Graph {
	var n int
	var edges []graph.Edge
	for _, g := range gs {
		for _, e := range g.Edges() {
			edges = append(edges, graph.Edge{U: e.U + int32(n), W: e.W + int32(n)})
		}
		n += g.NumVertices()
	}
	return graph.MustFromEdges(n, edges)
}
