package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestChain(t *testing.T) {
	g := Chain(100)
	if g.NumVertices() != 100 || g.NumEdges() != 99 {
		t.Fatalf("chain: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(50) != 2 || g.Degree(99) != 1 {
		t.Fatal("chain degrees wrong")
	}
	if graph.ApproxDiameter(g, 0) != 99 {
		t.Fatal("chain diameter wrong")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(10)
	if g.NumEdges() != 10 {
		t.Fatalf("cycle m=%d", g.NumEdges())
	}
	for v := int32(0); v < 10; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("cycle degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestGrid2DNonCircular(t *testing.T) {
	g := Grid2D(3, 4, false)
	if g.NumVertices() != 12 {
		t.Fatal("grid n wrong")
	}
	// 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
	if g.NumEdges() != 17 {
		t.Fatalf("grid m=%d, want 17", g.NumEdges())
	}
	if g.Degree(0) != 2 { // corner
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
}

func TestGrid2DCircular(t *testing.T) {
	g := Grid2D(4, 5, true)
	// circular: every vertex has degree 4
	for v := int32(0); v < g.N; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("circular grid degree(%d) = %d", v, g.Degree(v))
		}
	}
	if g.NumEdges() != 2*4*5 {
		t.Fatalf("circular grid m=%d", g.NumEdges())
	}
}

func TestGrid2DCircularSkipsTinyWrap(t *testing.T) {
	// rows or cols == 2 must not create parallel wrap edges.
	g := Grid2D(2, 5, true)
	for v := int32(0); v < g.N; v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] {
				t.Fatalf("parallel edge at %d: %v", v, nb)
			}
		}
	}
}

func TestSampledGrid(t *testing.T) {
	g := SampledGrid(30, 30, 0.6, 1)
	full := Grid2D(30, 30, true)
	if g.NumVertices() != 900 {
		t.Fatal("sampled grid n wrong")
	}
	ratio := float64(g.NumEdges()) / float64(full.NumEdges())
	if ratio < 0.5 || ratio > 0.7 {
		t.Fatalf("sampled ratio %.2f not near 0.6", ratio)
	}
	g2 := SampledGrid(30, 30, 0.6, 1)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
}

func TestRoadLike(t *testing.T) {
	g := RoadLike(40, 40, 0.1, 2)
	if g.NumVertices() != 1600 {
		t.Fatal("roadlike n wrong")
	}
	base := Grid2D(40, 40, false)
	if g.NumEdges() <= base.NumEdges() {
		t.Fatal("roadlike should add diagonals")
	}
	if d := graph.ApproxDiameter(g, 0); d < 30 {
		t.Fatalf("roadlike diameter %d too small", d)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 3)
	if g.NumVertices() != 1024 {
		t.Fatal("rmat n wrong")
	}
	if g.NumEdges() < 7*1024 || g.NumEdges() > 8*1024 {
		t.Fatalf("rmat m=%d", g.NumEdges())
	}
	// Power-law shape: max degree far above average.
	avg := 2 * g.NumEdges() / g.NumVertices()
	if g.MaxDegree() < 4*avg {
		t.Fatalf("rmat max degree %d not skewed (avg %d)", g.MaxDegree(), avg)
	}
	// No self loops.
	for v := int32(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if w == v {
				t.Fatal("rmat produced self loop")
			}
		}
	}
	g2 := RMAT(10, 8, 3)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("rmat not deterministic")
	}
}

func TestER(t *testing.T) {
	g := ER(1000, 5000, 4)
	if g.NumVertices() != 1000 {
		t.Fatal("er n wrong")
	}
	if g.NumEdges() < 4900 || g.NumEdges() > 5000 {
		t.Fatalf("er m=%d", g.NumEdges())
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(500, 5)
	if g.NumEdges() != 499 {
		t.Fatal("tree m wrong")
	}
	if !graph.ConnectedBFS(g) {
		t.Fatal("tree must be connected")
	}
}

func TestStar(t *testing.T) {
	g := Star(50)
	if g.Degree(0) != 49 || g.NumEdges() != 49 {
		t.Fatal("star shape wrong")
	}
}

func TestClique(t *testing.T) {
	g := Clique(10)
	if g.NumEdges() != 45 {
		t.Fatalf("clique m=%d", g.NumEdges())
	}
	for v := int32(0); v < 10; v++ {
		if g.Degree(v) != 9 {
			t.Fatal("clique degree wrong")
		}
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(4, 5)
	if g.NumVertices() != 4*4+1 {
		t.Fatalf("clique chain n=%d", g.NumVertices())
	}
	if g.NumEdges() != 4*10 {
		t.Fatalf("clique chain m=%d", g.NumEdges())
	}
	if !graph.ConnectedBFS(g) {
		t.Fatal("clique chain must be connected")
	}
}

func TestCliqueChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for s<2")
		}
	}()
	CliqueChain(3, 1)
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 3)
	if g.NumVertices() != 12 {
		t.Fatalf("barbell n=%d", g.NumVertices())
	}
	if g.NumEdges() != 2*10+3 {
		t.Fatalf("barbell m=%d", g.NumEdges())
	}
	if !graph.ConnectedBFS(g) {
		t.Fatal("barbell must be connected")
	}
}

func TestKNNBasic(t *testing.T) {
	n, k := 2000, 5
	g := KNN(n, k, 6)
	if g.NumVertices() != n {
		t.Fatal("knn n wrong")
	}
	// Each vertex has at least k neighbors (directed k out-edges,
	// symmetrized); parallel duplicates from mutual pairs are merged in
	// degree terms only if identical edges — FromEdges keeps multi-edges,
	// so degree >= k.
	for v := int32(0); v < g.N; v++ {
		if g.Degree(v) < k {
			t.Fatalf("knn degree(%d) = %d < k", v, g.Degree(v))
		}
	}
	if g.NumEdges() != n*k {
		t.Fatalf("knn m=%d, want %d", g.NumEdges(), n*k)
	}
	g2 := KNN(n, k, 6)
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("knn not deterministic")
	}
}

func TestKNNIsExact(t *testing.T) {
	// Brute-force check on a small instance: the chosen neighbors must be
	// the true k nearest (compare multiset of distances).
	n, k := 300, 4
	g := KNN(n, k, 7)
	if g.NumEdges() != n*k {
		t.Fatalf("m=%d", g.NumEdges())
	}
	// Reconstruct points with the same RNG stream used by KNN.
	xs := make([]float64, n)
	ys := make([]float64, n)
	rng := newTestRNG(7)
	for i := 0; i < n; i++ {
		xs[i] = rng.f64()
		ys[i] = rng.f64()
	}
	for i := 0; i < n; i++ {
		ds := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			ds = append(ds, dx*dx+dy*dy)
		}
		kth := kthSmallest(ds, k)
		// Every out-edge of i within the directed construction must have
		// distance <= kth (ties allowed).
		cnt := 0
		for _, w := range g.Neighbors(int32(i)) {
			dx, dy := xs[i]-xs[w], ys[i]-ys[w]
			if dx*dx+dy*dy <= kth+1e-12 {
				cnt++
			}
		}
		if cnt < k {
			t.Fatalf("vertex %d: only %d of its neighbors are within the true k-NN distance", i, cnt)
		}
	}
}

func TestKNNPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k >= n")
		}
	}()
	KNN(3, 3, 1)
}

func TestDisjoint(t *testing.T) {
	g := Disjoint(Cycle(5), Chain(4), Star(3))
	if g.NumVertices() != 12 {
		t.Fatalf("disjoint n=%d", g.NumVertices())
	}
	if g.NumEdges() != 5+3+2 {
		t.Fatalf("disjoint m=%d", g.NumEdges())
	}
	if graph.ConnectedBFS(g) {
		t.Fatal("disjoint union should be disconnected")
	}
	if !g.HasEdge(5, 6) { // chain shifted by 5
		t.Fatal("shifted edge missing")
	}
}

// minimal mirror of prim.RNG for the reconstruction test (same constants).
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{seed} }

func (r *testRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRNG) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

func kthSmallest(ds []float64, k int) float64 {
	cp := append([]float64(nil), ds...)
	for i := 0; i < k; i++ {
		minJ := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[minJ] {
				minJ = j
			}
		}
		cp[i], cp[minJ] = cp[minJ], cp[i]
	}
	return cp[k-1]
}
