package engine

import (
	"testing"

	"repro/internal/check"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/seqbcc"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) == 0 || names[0] != Default {
		t.Fatalf("Names() = %v, want %q first", names, Default)
	}
	for _, want := range []string{"fast", "fast-opt", "seq", "gbbs", "sm14", "tv"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("builtin engine %q not registered", want)
		}
	}
	if len(All()) != len(names) {
		t.Fatalf("All() and Names() disagree: %d vs %d", len(All()), len(names))
	}
}

func TestLookupDefaultAndUnknown(t *testing.T) {
	a, ok := Lookup("")
	if !ok || a.Name() != Default {
		t.Fatalf(`Lookup("") = %v, %v; want the default engine`, a, ok)
	}
	if _, err := Get("no-such-engine"); err == nil {
		t.Fatal("Get of unknown engine did not error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(seqEngine{})
}

// corpus returns graphs covering the shapes the engines disagree on when
// buggy: cycles, bridges, multigraph features, disconnection, isolation.
func corpus() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":     graph.MustFromEdges(0, nil),
		"singleton": graph.MustFromEdges(1, nil),
		"triangle+tail": graph.MustFromEdges(4, []graph.Edge{
			{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}, {U: 2, W: 3}}),
		"two-components": gen.Disjoint(gen.Cycle(5), gen.Clique(4)),
		"multigraph": graph.MustFromEdges(5, []graph.Edge{
			{U: 0, W: 1}, {U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 2},
			{U: 2, W: 3}, {U: 3, W: 4}, {U: 4, W: 2}}),
		"isolated+bridge": graph.MustFromEdges(6, []graph.Edge{{U: 1, W: 4}}),
		"cliquechain":     gen.CliqueChain(4, 5),
	}
}

func TestEveryEngineMatchesOracleOnCorpus(t *testing.T) {
	for gname, g := range corpus() {
		ref := seqbcc.BCC(g).Blocks
		for _, a := range All() {
			res, err := a.Run(g, RunOptions{Seed: 42})
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name(), gname, err)
			}
			if !check.Equal(res.Blocks(), ref) {
				t.Errorf("%s on %s: blocks mismatch\n got %s\nwant %s",
					a.Name(), gname, check.Describe(res.Blocks()), check.Describe(ref))
			}
			if res.NumBCC != len(ref) {
				t.Errorf("%s on %s: NumBCC = %d, want %d", a.Name(), gname, res.NumBCC, len(ref))
			}
		}
	}
}

// TestSM14Disconnected pins the satellite fix: the registered sm14 engine
// must handle disconnected and multigraph inputs even though the raw
// implementation returns ErrDisconnected, via the per-component wrapper.
func TestSM14Disconnected(t *testing.T) {
	a, err := Get("sm14")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Caps().ConnectedOnly {
		t.Fatal("sm14 should advertise ConnectedOnly")
	}
	cases := map[string]*graph.Graph{
		"two-cycles": gen.Disjoint(gen.Cycle(6), gen.Cycle(4)),
		"multigraph-with-isolated": graph.MustFromEdges(7, []graph.Edge{
			{U: 0, W: 1}, {U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0},
			{U: 4, W: 5}, {U: 5, W: 5}}),
		"all-isolated": graph.MustFromEdges(5, nil),
	}
	for name, g := range cases {
		res, err := a.Run(g, RunOptions{})
		if err != nil {
			t.Fatalf("sm14 on %s: %v", name, err)
		}
		want := seqbcc.BCC(g).Blocks
		if !check.Equal(res.Blocks(), want) {
			t.Errorf("sm14 on %s: got %s want %s",
				name, check.Describe(res.Blocks()), check.Describe(want))
		}
	}
}

// TestDeterministicEngines verifies the Deterministic capability claim:
// byte-identical Label/Head/Parent across repeated runs.
func TestDeterministicEngines(t *testing.T) {
	g := gen.Disjoint(gen.RMAT(8, 4, 3), gen.Cycle(17))
	for _, a := range All() {
		if !a.Caps().Deterministic {
			continue
		}
		r1, err1 := a.Run(g, RunOptions{Seed: 1})
		r2, err2 := a.Run(g, RunOptions{Seed: 1})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", a.Name(), err1, err2)
		}
		for v := range r1.Label {
			if r1.Label[v] != r2.Label[v] || r1.Parent[v] != r2.Parent[v] {
				t.Fatalf("%s: run-to-run mismatch at v=%d", a.Name(), v)
			}
		}
		for l := range r1.Head {
			if r1.Head[l] != r2.Head[l] {
				t.Fatalf("%s: head mismatch at label %d", a.Name(), l)
			}
		}
	}
}

// TestFromBlocksInvariants checks the adapter output satisfies the
// core.Result contract on a graph with cut vertices, bridges, and roots.
func TestFromBlocksInvariants(t *testing.T) {
	g := gen.Disjoint(gen.CliqueChain(3, 4), gen.Star(5))
	res := FromBlocks(nil, g, seqbcc.BCC(g).Blocks)
	n := g.NumVertices()
	if len(res.Label) != n || len(res.Parent) != n {
		t.Fatalf("bad array lengths")
	}
	if res.NumLabels != len(res.Head) {
		t.Fatalf("NumLabels %d != len(Head) %d", res.NumLabels, len(res.Head))
	}
	roots := 0
	for v := 0; v < n; v++ {
		l := res.Label[v]
		if l < 0 || int(l) >= res.NumLabels {
			t.Fatalf("label out of range at %d", v)
		}
		if p := res.Parent[v]; p == -1 {
			roots++
			if res.Head[l] != -1 {
				t.Fatalf("root %d has a headed label", v)
			}
		} else {
			// Tree edges must be graph edges.
			found := false
			for _, w := range g.Neighbors(int32(v)) {
				if w == p {
					found = true
				}
			}
			if !found {
				t.Fatalf("parent edge (%d,%d) is not a graph edge", p, v)
			}
			if res.Head[l] == -1 {
				t.Fatalf("non-root %d has headless label", v)
			}
		}
	}
	if nb := res.NumBCC; nb != res.NumLabels-roots {
		t.Fatalf("NumBCC %d != NumLabels-roots %d", nb, res.NumLabels-roots)
	}
	// Derived queries must work off the adapter result.
	want := seqbcc.BCC(g)
	if got := res.ArticulationPoints(); len(got) != len(want.ArticulationPoints()) {
		t.Fatalf("articulation points: got %v want %v", got, want.ArticulationPoints())
	}
	if got := res.Bridges(g); len(got) != len(want.Bridges()) {
		t.Fatalf("bridges: got %v want %v", got, want.Bridges())
	}
}

// TestEnginesUnderExec runs every engine on an isolated private context
// and checks the result is unaffected (the Exec-threading satellite).
func TestEnginesUnderExec(t *testing.T) {
	g := gen.Disjoint(gen.Cycle(64), gen.Chain(33))
	ref := seqbcc.BCC(g).Blocks
	ex := parallel.NewExec(3)
	defer ex.Close()
	for _, a := range All() {
		res, err := a.Run(g, RunOptions{Exec: ex, Threads: 2, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if !check.Equal(res.Blocks(), ref) {
			t.Errorf("%s under private Exec: blocks mismatch", a.Name())
		}
	}
}
