package engine

import (
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// FromBlocks converts an explicit block decomposition (the native output
// of the Hopcroft–Tarjan, SM'14, and Tarjan–Vishkin engines) into the
// paper's O(n) label/head representation over a BFS spanning forest of g,
// with the same precomputed caches the fastbcc constructors build — so a
// blocks-based engine plugs into every downstream consumer of core.Result
// (Index, Store, TwoECC, BlockCutTree).
//
// The construction leans on a standard fact: an edge of g belongs to
// exactly one block, and that block is the unique one containing both
// endpoints (two distinct blocks share at most one vertex). So with any
// spanning forest whose tree edges are graph edges, each non-root vertex v
// is labeled by the block containing the tree edge (parent[v], v), and a
// block's head is its single member whose own label differs (the block's
// shallowest vertex). Tree roots get fresh singleton labels with no head,
// exactly like the skeleton-connectivity pipeline produces.
//
// Blocks are canonicalized (each sorted, then the list sorted) and the
// forest is a deterministic sequential BFS, so the returned Result is
// identical across runs — blocks-based engines come out Deterministic
// even when their internal scheduling is not. FromBlocks takes ownership
// of blocks and its inner slices. e drives the parallel cache precompute
// (nil = default context).
func FromBlocks(e *parallel.Exec, g *graph.Graph, blocks [][]int32) *core.Result {
	n := int(g.N)
	for _, b := range blocks {
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	}
	sort.Slice(blocks, func(i, j int) bool { return lessBlock(blocks[i], blocks[j]) })

	// Deterministic sequential BFS spanning forest (explicit queue: no
	// recursion, so huge-diameter inputs like the paper's Chn graphs are
	// safe). Performance is not critical here — these are the baselines.
	parent := make([]int32, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, 1024)
	var roots []int32
	blockBytes := int64(0)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		parent[s] = -1
		roots = append(roots, int32(s))
		queue = append(queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, w := range g.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
	}

	// Label non-root vertices by the block holding their tree edge: mark
	// the current block's members in stamp, then claim every member whose
	// parent is marked too. stamp never needs resetting — block ids only
	// grow.
	label := make([]int32, n)
	stamp := make([]int32, n)
	for i := range stamp {
		label[i] = -1
		stamp[i] = -1
	}
	numBlocks := int32(len(blocks))
	head := make([]int32, len(blocks)+len(roots))
	for b, blk := range blocks {
		blockBytes += int64(4 * len(blk))
		for _, v := range blk {
			stamp[v] = int32(b)
		}
		h := int32(-1)
		for _, v := range blk {
			if parent[v] != -1 && stamp[parent[v]] == int32(b) {
				label[v] = int32(b)
			} else {
				// The block's shallowest vertex: its own tree edge (or
				// rootness) lies outside the block, so it is the head.
				h = v
			}
		}
		if h == -1 {
			panic("engine: block without a head — input was not a block decomposition")
		}
		head[b] = h
	}
	for i, r := range roots {
		label[r] = numBlocks + int32(i)
		head[numBlocks+int32(i)] = -1
	}

	res := &core.Result{
		Label:     label,
		Head:      head,
		Parent:    parent,
		NumLabels: len(head),
		NumBCC:    len(blocks),
	}
	// Adapter state (parent, label, stamp, visited, queue) plus the
	// materialized blocks — the O(sum of block sizes) term the paper's
	// O(n) representation avoids.
	res.AuxBytes = int64(n)*4*3 + int64(n) + blockBytes
	res.PrecomputeLabelSizes()
	res.PrecomputeTopologyIn(e)
	return res
}

func lessBlock(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
