package engine

import (
	"time"

	"repro/internal/bfsbcc"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seqbcc"
	"repro/internal/smbcc"
	"repro/internal/tv"
)

// The built-in engines: FAST-BCC (the paper's algorithm, with and without
// the "Opt" connectivity ablation) and the three baselines it is evaluated
// against, plus Tarjan–Vishkin from the appendix. Registered here rather
// than in the algorithm packages so the registry is fully populated by
// importing this package alone; a new engine needs one entry (or its own
// init-time Register call).
func init() {
	Register(fastEngine{name: "fast"})
	Register(fastEngine{name: "fast-opt", localSearch: true})
	Register(seqEngine{})
	Register(gbbsEngine{})
	Register(smEngine{})
	Register(tvEngine{})
}

// fastEngine is FAST-BCC (core.BCC): the default engine and the only one
// that uses every RunOptions field.
type fastEngine struct {
	name        string
	localSearch bool
}

func (f fastEngine) Name() string { return f.name }
func (f fastEngine) Caps() Caps   { return Caps{} }
func (f fastEngine) Run(g *graph.Graph, opt RunOptions) (*core.Result, error) {
	e := opt.Context()
	res := core.BCC(g, core.Options{
		Seed:        opt.Seed,
		LocalSearch: f.localSearch || opt.LocalSearch,
		Scratch:     opt.Scratch,
		Exec:        e,
	})
	// The Algorithm contract: registry results carry the precomputed
	// topology caches (core.BCC itself leaves them lazy for one-shot
	// callers).
	res.PrecomputeTopologyIn(e)
	return res, nil
}

// seqEngine is sequential Hopcroft–Tarjan (the paper's SEQ baseline and
// the repository's correctness oracle), adapted to the label/head
// representation with FromBlocks.
type seqEngine struct{}

func (seqEngine) Name() string { return "seq" }
func (seqEngine) Caps() Caps   { return Caps{Sequential: true, Deterministic: true} }
func (seqEngine) Run(g *graph.Graph, opt RunOptions) (*core.Result, error) {
	t0 := time.Now()
	sr := seqbcc.BCC(g)
	res := FromBlocks(opt.Context(), g, sr.Blocks)
	res.Times.LastCC = time.Since(t0)
	return res, nil
}

// gbbsEngine is the BFS-skeleton baseline; it natively produces
// core.Result, so no adaptation is needed.
type gbbsEngine struct{}

func (gbbsEngine) Name() string { return "gbbs" }
func (gbbsEngine) Caps() Caps   { return Caps{} }
func (gbbsEngine) Run(g *graph.Graph, opt RunOptions) (*core.Result, error) {
	return bfsbcc.BCC(g, bfsbcc.Options{Seed: opt.Seed, Exec: opt.Context()}), nil
}

// smEngine is the SM'14-style baseline. Its raw form supports only
// connected inputs (the paper's Tab. 2 "n" entries); the ConnectedOnly
// capability makes the registry install the per-component normalizer, so
// the registered engine accepts any graph.
type smEngine struct{}

func (smEngine) Name() string { return "sm14" }
func (smEngine) Caps() Caps {
	return Caps{ConnectedOnly: true, Deterministic: true}
}
func (smEngine) Run(g *graph.Graph, opt RunOptions) (*core.Result, error) {
	t0 := time.Now()
	sr, err := smbcc.BCC(g, smbcc.Options{Source: opt.Source, Exec: opt.Context()})
	if err != nil {
		return nil, err
	}
	res := FromBlocks(opt.Context(), g, sr.Blocks())
	res.Times.Rooting = sr.Times.Rooting
	res.Times.LastCC = time.Since(t0) - sr.Times.Rooting
	return res, nil
}

// runBlocks hands the per-component normalizer the native block list,
// skipping the per-subgraph Result adaptation.
func (smEngine) runBlocks(g *graph.Graph, opt RunOptions) ([][]int32, error) {
	sr, err := smbcc.BCC(g, smbcc.Options{Source: opt.Source, Exec: opt.Context()})
	if err != nil {
		return nil, err
	}
	return sr.Blocks(), nil
}

// tvEngine is Tarjan–Vishkin (Appendix A): per-edge components, adapted
// via its materialized block list.
type tvEngine struct{}

func (tvEngine) Name() string { return "tv" }
func (tvEngine) Caps() Caps   { return Caps{Deterministic: true} }
func (tvEngine) Run(g *graph.Graph, opt RunOptions) (*core.Result, error) {
	t0 := time.Now()
	e := opt.Context()
	tr := tv.BCC(g, tv.Options{Seed: opt.Seed, LocalSearch: opt.LocalSearch, Exec: e})
	res := FromBlocks(e, g, tr.Blocks())
	res.Times = tr.Times
	res.Times.LastCC += time.Since(t0) - tr.Times.Total()
	res.AuxBytes = tr.AuxBytes
	return res, nil
}
