// Package engine unifies every BCC implementation in the repository behind
// one interface and one registry, so algorithm selection is data that can
// be threaded through the whole serving stack (fastbcc.Options, Runner,
// Store, cmd/bccd) instead of a hard-wired constructor call.
//
// An Algorithm takes a graph plus per-run execution options and returns
// the paper's O(n) label/head decomposition (core.Result) — whatever its
// native output shape. Engines whose natural result is an explicit block
// list (Hopcroft–Tarjan, SM'14, Tarjan–Vishkin) are adapted with
// FromBlocks, which rebuilds the label/head representation over a
// deterministic BFS spanning forest; engines that already produce
// core.Result (FAST-BCC, the GBBS-style baseline) run natively. Every
// registered engine therefore serves the full downstream query surface:
// Blocks, ArticulationPoints, Bridges, BlockCutTree, TwoECC, and the
// bctree Index.
//
// Restrictions are capability flags, not errors. An engine registered with
// Caps.ConnectedOnly (SM'14 rejects disconnected inputs, matching the
// "n = no support" entries of the paper's Tab. 2) is transparently wrapped
// by a per-component normalizer: the graph is split into connected
// components, the raw engine runs on each induced subgraph, and the block
// lists are merged back onto original vertex ids. Callers never see
// ErrDisconnected.
//
// Adding a new algorithm is a one-package change: implement Algorithm,
// call Register in an init function (or from builtin.go), and the public
// API, Runner, Store, bccd, the CLIs, the cross-test matrix, and the
// bench engine matrix all pick it up automatically.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// ErrUnknownAlgorithm is wrapped by Get's error for unregistered names,
// so callers can classify it with errors.Is (bccd maps it to a 400).
var ErrUnknownAlgorithm = errors.New("unknown algorithm")

// Caps describes an engine's restrictions and guarantees. The flags are
// informational for callers (capability tables, scheduling hints); the
// registry uses ConnectedOnly to install the per-component normalizer.
type Caps struct {
	// ConnectedOnly marks engines whose raw implementation supports only
	// connected inputs. The registry wraps such engines so that Run still
	// accepts any graph (see Normalize).
	ConnectedOnly bool
	// Sequential marks engines that run single-threaded and ignore the
	// Exec/Threads execution options.
	Sequential bool
	// Deterministic marks engines whose Result (labels, heads, parents —
	// not just the block decomposition, which is canonical for every
	// engine) is identical across runs with equal RunOptions, independent
	// of scheduling and seeds.
	Deterministic bool
}

// String renders the capability flags compactly, e.g. "connected-only,seq".
func (c Caps) String() string {
	s := ""
	add := func(f string) {
		if s != "" {
			s += ","
		}
		s += f
	}
	if c.ConnectedOnly {
		add("connected-only")
	}
	if c.Sequential {
		add("seq")
	}
	if c.Deterministic {
		add("deterministic")
	}
	if s == "" {
		s = "-"
	}
	return s
}

// RunOptions carries the per-run execution state every engine receives.
// Engines use what applies to them and ignore the rest (a sequential
// engine ignores Exec/Threads; a deterministic one ignores Seed).
type RunOptions struct {
	// Exec is the execution context parallel loops run on (nil = the
	// process-global default pool).
	Exec *parallel.Exec
	// Threads further caps Exec for this one run (0 = no extra cap).
	Threads int
	// Scratch, when non-nil, recycles large auxiliary buffers across runs
	// (used by the FAST-BCC pipeline; other engines may ignore it).
	Scratch *graph.Scratch
	// Source is the root vertex for engines that grow a tree from a seed
	// vertex (SM'14's BFS root). Out-of-range values select vertex 0.
	Source int32
	// Seed drives randomized engines (LDD shifts in the connectivity
	// phases). Equal seeds on equal graphs reproduce the same run.
	Seed uint64
	// LocalSearch enables the hash-bag/local-search connectivity
	// optimization on engines that support it (the paper's "Opt").
	LocalSearch bool
}

// Context resolves the effective execution context: Exec capped by
// Threads. Engines should run every parallel loop on the returned context.
func (o RunOptions) Context() *parallel.Exec {
	return o.Exec.Limit(o.Threads)
}

// Algorithm is one BCC engine: a named, capability-tagged computation
// from a graph to the shared core.Result representation. Implementations
// must be safe for concurrent Run calls on the same or different graphs.
type Algorithm interface {
	// Name is the registry key, a short stable identifier ("fast", "seq").
	Name() string
	// Caps reports the engine's restrictions and guarantees.
	Caps() Caps
	// Run computes the biconnected components of g. The returned Result
	// must carry the precomputed label-size and topology caches, like the
	// fastbcc constructors build, so it can be served and indexed
	// directly.
	Run(g *graph.Graph, opt RunOptions) (*core.Result, error)
}

// Default is the name of the engine selection used when none is given.
const Default = "fast"

var (
	regMu    sync.RWMutex
	registry = map[string]Algorithm{}
)

// Register adds a to the registry under a.Name(), wrapping ConnectedOnly
// engines with the per-component normalizer (see Normalize). It panics on
// a duplicate or empty name — registration is program initialization, not
// a runtime event.
func Register(a Algorithm) {
	name := a.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate Register(%q)", name))
	}
	registry[name] = Normalize(a)
}

// Lookup returns the registered engine for name; "" selects Default.
func Lookup(name string) (Algorithm, bool) {
	if name == "" {
		name = Default
	}
	regMu.RLock()
	defer regMu.RUnlock()
	a, ok := registry[name]
	return a, ok
}

// Get is Lookup returning an error that lists the valid names — the
// serving layers surface it directly to clients.
func Get(name string) (Algorithm, error) {
	a, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("engine: %w %q (have %v)", ErrUnknownAlgorithm, name, Names())
	}
	return a, nil
}

// Names returns the registered engine names, Default first, the rest
// sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if (out[i] == Default) != (out[j] == Default) {
			return out[i] == Default
		}
		return out[i] < out[j]
	})
	return out
}

// All returns the registered engines in Names() order.
func All() []Algorithm {
	names := Names()
	out := make([]Algorithm, 0, len(names))
	regMu.RLock()
	defer regMu.RUnlock()
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}
