package engine

import (
	"repro/internal/conn"
	"repro/internal/core"
	"repro/internal/graph"
)

// Normalize returns a whose restrictions are lifted so Run accepts any
// input: a ConnectedOnly engine is wrapped to run per connected component
// and merge the labels. Engines without restrictions are returned as-is.
// The registry normalizes on Register, so everything obtained through
// Lookup/Get/All is already total.
func Normalize(a Algorithm) Algorithm {
	if a.Caps().ConnectedOnly {
		return &componentSplit{raw: a}
	}
	return a
}

// blockLister is an optional engine interface: an engine whose native
// output is an explicit block list exposes it so the per-component
// normalizer consumes blocks directly, instead of having every
// subgraph's Result adapted (label/head arrays plus topology caches
// built) only to be flattened back to blocks and re-adapted.
type blockLister interface {
	runBlocks(g *graph.Graph, opt RunOptions) ([][]int32, error)
}

// componentSplit runs a ConnectedOnly engine per connected component and
// merges the per-component block lists back onto original vertex ids with
// FromBlocks. Connected inputs (the common case, checked with one
// connectivity pass) go straight to the raw engine.
type componentSplit struct {
	raw Algorithm
}

func (c *componentSplit) Name() string { return c.raw.Name() }

// Caps still reports the raw engine's flags — ConnectedOnly is
// informational ("this baseline natively rejects disconnected inputs",
// the paper's Tab. 2 "n" entries) and tells callers the wrapper is in
// play, not that Run will fail.
func (c *componentSplit) Caps() Caps { return c.raw.Caps() }

func (c *componentSplit) Run(g *graph.Graph, opt RunOptions) (*core.Result, error) {
	n := int(g.N)
	e := opt.Context()
	cc := conn.Connectivity(g, conn.Options{Seed: opt.Seed, Exec: e})
	if cc.NumComp <= 1 {
		return c.raw.Run(g, opt)
	}

	// Group vertices by component representative: newID doubles as the
	// per-component dense id, verts is bucketed via a counting pass.
	comp := cc.Comp
	newID := make([]int32, n)
	counts := map[int32]int32{}
	for v := 0; v < n; v++ {
		r := comp[v]
		newID[v] = counts[r]
		counts[r]++
	}
	verts := map[int32][]int32{}
	for v := 0; v < n; v++ {
		r := comp[v]
		if verts[r] == nil {
			verts[r] = make([]int32, counts[r])
		}
		verts[r][newID[v]] = int32(v)
	}

	// Run the raw engine on each induced subgraph (components in
	// representative order for determinism of the merged block list, which
	// FromBlocks canonicalizes anyway) and collect blocks in original ids.
	var blocks [][]int32
	for r := int32(0); r < int32(n); r++ {
		vs := verts[r]
		if vs == nil {
			continue
		}
		sub, err := inducedSubgraph(g, vs, newID)
		if err != nil {
			return nil, err
		}
		subOpt := opt
		subOpt.Exec, subOpt.Threads = e, 0
		subOpt.Source = 0
		if int(opt.Source) < n && opt.Source >= 0 && comp[opt.Source] == r {
			subOpt.Source = newID[opt.Source]
		}
		var subBlocks [][]int32
		if bl, ok := c.raw.(blockLister); ok {
			subBlocks, err = bl.runBlocks(sub, subOpt)
		} else {
			var res *core.Result
			res, err = c.raw.Run(sub, subOpt)
			if res != nil {
				subBlocks = res.Blocks()
			}
		}
		if err != nil {
			return nil, err
		}
		for _, blk := range subBlocks {
			orig := make([]int32, len(blk))
			for i, v := range blk {
				orig[i] = vs[v]
			}
			blocks = append(blocks, orig)
		}
	}
	return FromBlocks(e, g, blocks), nil
}

// inducedSubgraph builds the subgraph on vs (original ids, dense order
// matching newID) with parallel edges preserved and self-loops dropped
// (they never affect biconnectivity).
func inducedSubgraph(g *graph.Graph, vs []int32, newID []int32) (*graph.Graph, error) {
	var edges []graph.Edge
	for _, v := range vs {
		for _, w := range g.Neighbors(v) {
			if v < w {
				edges = append(edges, graph.Edge{U: newID[v], W: newID[w]})
			}
		}
	}
	return graph.FromEdges(len(vs), edges)
}
