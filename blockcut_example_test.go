package fastbcc_test

import (
	"fmt"

	fastbcc "repro"
)

// ExampleResult_BlockCutTree builds the block-cut tree of a path: blocks
// and articulation points alternate along the tree.
func ExampleResult_BlockCutTree() {
	g := fastbcc.GenerateChain(4) // 0-1-2-3: blocks {0,1},{1,2},{2,3}
	res := fastbcc.BCC(g, nil)
	bct := res.BlockCutTree()
	fmt.Println(bct.NumBlocks, len(bct.Cuts), bct.IsTree())
	// Output:
	// 3 2 true
}

// ExampleResult_BlockSizes inspects block sizes on a barbell graph.
func ExampleResult_BlockSizes() {
	g, _ := fastbcc.NewGraphFromEdges(7, []fastbcc.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}, // triangle
		{U: 2, W: 3},                                           // bridge
		{U: 3, W: 4}, {U: 4, W: 5}, {U: 5, W: 6}, {U: 6, W: 3}, // square
	})
	res := fastbcc.BCC(g, nil)
	size, _ := res.LargestBlock()
	fmt.Println(res.NumBCC, size)
	// Output:
	// 3 4
}
