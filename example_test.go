package fastbcc_test

import (
	"fmt"

	fastbcc "repro"
)

// ExampleBCC demonstrates the basic decomposition of a small graph: a
// triangle with a pendant bridge.
func ExampleBCC() {
	g, _ := fastbcc.NewGraphFromEdges(4, []fastbcc.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}, {U: 2, W: 3},
	})
	res := fastbcc.BCC(g, nil)
	fmt.Println(res.NumBCC)
	fmt.Println(res.Blocks())
	// Output:
	// 2
	// [[0 1 2] [2 3]]
}

// ExampleResult_ArticulationPoints finds the cut vertices of a path.
func ExampleResult_ArticulationPoints() {
	g := fastbcc.GenerateChain(5) // 0-1-2-3-4
	res := fastbcc.BCC(g, nil)
	fmt.Println(res.ArticulationPoints())
	// Output:
	// [1 2 3]
}

// ExampleResult_Bridges lists the bridges of a graph where one edge has a
// parallel copy (a parallel pair is never a bridge).
func ExampleResult_Bridges() {
	g, _ := fastbcc.NewGraphFromEdges(3, []fastbcc.Edge{
		{U: 0, W: 1}, {U: 0, W: 1}, {U: 1, W: 2},
	})
	res := fastbcc.BCC(g, nil)
	fmt.Println(res.Bridges(g))
	// Output:
	// [{1 2}]
}

// ExampleResult_Biconnected answers O(1) same-block queries.
func ExampleResult_Biconnected() {
	// Two triangles sharing vertex 2.
	g, _ := fastbcc.NewGraphFromEdges(5, []fastbcc.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0},
		{U: 2, W: 3}, {U: 3, W: 4}, {U: 4, W: 2},
	})
	res := fastbcc.BCC(g, nil)
	fmt.Println(res.Biconnected(0, 1), res.Biconnected(0, 2), res.Biconnected(0, 3))
	// Output:
	// true true false
}

// ExampleBCCSeq runs the sequential Hopcroft–Tarjan baseline.
func ExampleBCCSeq() {
	g := fastbcc.GenerateChain(4)
	fmt.Println(fastbcc.BCCSeq(g).NumBCC())
	// Output:
	// 3
}
